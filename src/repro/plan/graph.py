"""Logical dataflow graphs: the StreamGraph built by the API and the
JobGraph produced by the optimizer.

The uniform programming model builds one :class:`StreamGraph` regardless
of whether inputs are bounded (data at rest) or unbounded (data in
motion).  The optimizer (:mod:`repro.plan.chaining`) fuses eligible
pipelined edges into chains, yielding a :class:`JobGraph` whose vertices
the runtime expands into parallel subtasks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.runtime.partition import Partitioner

OperatorFactory = Callable[[], Any]


class SourceSpec:
    """How a source node's data is (re)created.

    Stashed on source :class:`StreamNode`\\ s by the environment so
    hybrid composition (``DataSet.then_stream`` /
    ``DataStream.with_history``) can lift the replayable factory out of
    the source node it replaces with a :class:`CutoverNode`."""

    __slots__ = ("factory", "timestamped")

    def __init__(self, factory: Callable[[], Any],
                 timestamped: bool = False) -> None:
        self.factory = factory
        self.timestamped = timestamped

    def __repr__(self) -> str:
        return "SourceSpec(timestamped=%r)" % self.timestamped


class StreamNode:
    """One logical operator in the user's program."""

    def __init__(self, node_id: int, name: str,
                 operator_factory: OperatorFactory,
                 parallelism: int,
                 is_source: bool = False,
                 is_sink: bool = False,
                 allow_chaining: bool = True) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1; got %d" % parallelism)
        self.node_id = node_id
        self.name = name
        self.operator_factory = operator_factory
        self.parallelism = parallelism
        self.is_source = is_source
        self.is_sink = is_sink
        self.allow_chaining = allow_chaining
        #: Set by the environment on replayable source nodes; hybrid
        #: composition requires it to lift the factory (see SourceSpec).
        self.source_spec: Optional[SourceSpec] = None

    def __repr__(self) -> str:
        return "StreamNode(%d, %r, p=%d)" % (self.node_id, self.name,
                                             self.parallelism)


class CutoverNode(StreamNode):
    """A source node fusing a bounded history prefix and a live stream.

    Placed by ``then_stream``/``with_history`` in place of the two
    source nodes it absorbs; carries the cutover metadata the optimizer
    validates and ``env.explain()`` renders.  Physically it is an
    ordinary source (the :class:`~repro.connectors.sources.HybridSource`
    operator), so chaining fuses downstream operators into it exactly
    like any other source."""

    def __init__(self, node_id: int, name: str,
                 operator_factory: OperatorFactory,
                 parallelism: int,
                 cutover: Optional[int],
                 history_name: str,
                 stream_name: str) -> None:
        super().__init__(node_id, name, operator_factory, parallelism,
                         is_source=True)
        self.cutover = cutover
        self.history_name = history_name
        self.stream_name = stream_name

    def __repr__(self) -> str:
        return "CutoverNode(%d, %r, p=%d, cutover=%r)" % (
            self.node_id, self.name, self.parallelism, self.cutover)


class StreamEdge:
    """A logical connection between two stream nodes.

    ``target_input`` selects which input of a multi-input operator this
    edge feeds (0 for the build side / primary input, 1 for the probe /
    secondary input of joins and co-process operators).
    """

    def __init__(self, source_id: int, target_id: int,
                 partitioner: Partitioner, target_input: int = 0) -> None:
        if target_input not in (0, 1):
            raise ValueError("target_input must be 0 or 1")
        self.source_id = source_id
        self.target_id = target_id
        self.partitioner = partitioner
        self.target_input = target_input

    def __repr__(self) -> str:
        return "StreamEdge(%d -> %d.in%d via %s)" % (
            self.source_id, self.target_id, self.target_input,
            self.partitioner.name)


class GraphValidationError(Exception):
    """The user's program does not form a valid dataflow."""


class StreamGraph:
    """The DAG the fluent API accumulates."""

    def __init__(self) -> None:
        self._nodes: Dict[int, StreamNode] = {}
        self._edges: List[StreamEdge] = []
        self._next_id = 0

    def new_node(self, name: str, operator_factory: OperatorFactory,
                 parallelism: int, is_source: bool = False,
                 is_sink: bool = False,
                 allow_chaining: bool = True) -> StreamNode:
        node = StreamNode(self._next_id, name, operator_factory, parallelism,
                          is_source=is_source, is_sink=is_sink,
                          allow_chaining=allow_chaining)
        self._nodes[node.node_id] = node
        self._next_id += 1
        return node

    def new_cutover_node(self, name: str, operator_factory: OperatorFactory,
                         parallelism: int, cutover: Optional[int],
                         history_name: str,
                         stream_name: str) -> CutoverNode:
        """Allocate a :class:`CutoverNode` (hybrid history+stream
        source) with the next node id."""
        node = CutoverNode(self._next_id, name, operator_factory,
                           parallelism, cutover=cutover,
                           history_name=history_name,
                           stream_name=stream_name)
        self._nodes[node.node_id] = node
        self._next_id += 1
        return node

    def remove_node(self, node_id: int) -> StreamNode:
        """Remove one node and its incident edges.

        Used when hybrid composition replaces two source nodes with a
        single :class:`CutoverNode`; removing a node that other
        operators already consume would orphan them, so callers must
        check out-edges first."""
        if node_id not in self._nodes:
            raise GraphValidationError("unknown node %d" % node_id)
        node = self._nodes.pop(node_id)
        self._edges = [edge for edge in self._edges
                       if edge.source_id != node_id
                       and edge.target_id != node_id]
        return node

    def add_edge(self, source_id: int, target_id: int,
                 partitioner: Partitioner,
                 target_input: int = 0) -> StreamEdge:
        if source_id not in self._nodes:
            raise GraphValidationError("unknown source node %d" % source_id)
        if target_id not in self._nodes:
            raise GraphValidationError("unknown target node %d" % target_id)
        edge = StreamEdge(source_id, target_id, partitioner, target_input)
        self._edges.append(edge)
        return edge

    @property
    def nodes(self) -> Dict[int, StreamNode]:
        return self._nodes

    @property
    def edges(self) -> List[StreamEdge]:
        return self._edges

    def in_edges(self, node_id: int) -> List[StreamEdge]:
        return [e for e in self._edges if e.target_id == node_id]

    def out_edges(self, node_id: int) -> List[StreamEdge]:
        return [e for e in self._edges if e.source_id == node_id]

    def sources(self) -> List[StreamNode]:
        return [n for n in self._nodes.values() if n.is_source]

    def validate(self) -> None:
        """Raise :class:`GraphValidationError` unless the graph is a DAG
        with at least one source, and every non-source node is reachable."""
        if not self._nodes:
            raise GraphValidationError("empty program: no operators defined")
        if not self.sources():
            raise GraphValidationError("program has no sources")
        for node in self._nodes.values():
            if not node.is_source and not self.in_edges(node.node_id):
                raise GraphValidationError(
                    "operator %r has no inputs and is not a source" % node.name)
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[StreamNode]:
        """Kahn's algorithm; raises on cycles."""
        in_degree = {node_id: 0 for node_id in self._nodes}
        for edge in self._edges:
            in_degree[edge.target_id] += 1
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: List[StreamNode] = []
        while ready:
            node_id = ready.pop(0)
            order.append(self._nodes[node_id])
            for edge in self.out_edges(node_id):
                in_degree[edge.target_id] -= 1
                if in_degree[edge.target_id] == 0:
                    ready.append(edge.target_id)
            ready.sort()
        if len(order) != len(self._nodes):
            raise GraphValidationError("dataflow graph contains a cycle")
        return order


class JobVertex:
    """A chain of one or more operators executed by the same subtasks."""

    def __init__(self, vertex_id: int, names: List[str],
                 operator_factories: List[OperatorFactory],
                 parallelism: int, is_source: bool) -> None:
        self.vertex_id = vertex_id
        self.names = names
        self.operator_factories = operator_factories
        self.parallelism = parallelism
        self.is_source = is_source

    @property
    def name(self) -> str:
        return " -> ".join(self.names)

    @property
    def chain_length(self) -> int:
        return len(self.operator_factories)

    def __repr__(self) -> str:
        return "JobVertex(%d, %r, p=%d)" % (self.vertex_id, self.name,
                                            self.parallelism)


class JobEdge:
    """A physical connection between two job vertices."""

    def __init__(self, source_vertex: int, target_vertex: int,
                 partitioner: Partitioner, target_input: int = 0) -> None:
        self.source_vertex = source_vertex
        self.target_vertex = target_vertex
        self.partitioner = partitioner
        self.target_input = target_input

    def __repr__(self) -> str:
        return "JobEdge(%d -> %d.in%d via %s)" % (
            self.source_vertex, self.target_vertex, self.target_input,
            self.partitioner.name)


class JobGraph:
    """The optimized plan handed to the runtime."""

    def __init__(self, vertices: Dict[int, JobVertex],
                 edges: List[JobEdge]) -> None:
        self.vertices = vertices
        self.edges = edges

    def in_edges(self, vertex_id: int) -> List[JobEdge]:
        return [e for e in self.edges if e.target_vertex == vertex_id]

    def out_edges(self, vertex_id: int) -> List[JobEdge]:
        return [e for e in self.edges if e.source_vertex == vertex_id]

    def sources(self) -> List[JobVertex]:
        return [v for v in self.vertices.values() if v.is_source]

    def total_chained_operators(self) -> int:
        return sum(v.chain_length for v in self.vertices.values())
