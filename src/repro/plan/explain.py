"""Human-readable plan rendering (``env.explain()``)."""

from __future__ import annotations

from typing import List

from repro.plan.graph import CutoverNode, JobGraph, StreamGraph


def explain_stream_graph(graph: StreamGraph) -> str:
    lines: List[str] = ["== Logical plan (StreamGraph) =="]
    for node in graph.topological_order():
        if isinstance(node, CutoverNode):
            seam = ("cutover@%d" % node.cutover
                    if node.cutover is not None else "cutover=concat")
            role = " [source, %s: %s -> %s]" % (seam, node.history_name,
                                                node.stream_name)
        else:
            role = (" [source]" if node.is_source
                    else (" [sink]" if node.is_sink else ""))
        lines.append("  (%d) %s, parallelism=%d%s"
                     % (node.node_id, node.name, node.parallelism, role))
        for edge in graph.out_edges(node.node_id):
            target = graph.nodes[edge.target_id]
            lines.append("        -> (%d) %s via %s"
                         % (target.node_id, target.name, edge.partitioner.name))
    return "\n".join(lines)


def explain_job_graph(job_graph: JobGraph) -> str:
    lines: List[str] = ["== Physical plan (JobGraph) =="]
    for vertex_id in sorted(job_graph.vertices):
        vertex = job_graph.vertices[vertex_id]
        role = " [source]" if vertex.is_source else ""
        lines.append("  [%d] %s, parallelism=%d, chain=%d%s"
                     % (vertex.vertex_id, vertex.name, vertex.parallelism,
                        vertex.chain_length, role))
        for edge in job_graph.out_edges(vertex_id):
            target = job_graph.vertices[edge.target_vertex]
            lines.append("        -> [%d] %s via %s"
                         % (target.vertex_id, target.name,
                            edge.partitioner.name))
    return "\n".join(lines)
