"""Plan-level optimizer: the passes between StreamGraph and JobGraph.

Two passes run on every ``env.execute()``:

1. **dead-branch elimination** -- operators with no path to any sink
   compute results nobody observes; they are removed (with their
   upstream-only dependencies) before physical planning.  Skipped when
   the program declares no sinks at all (then everything is
   intentionally effect-free, e.g. cost-model benchmarks driving
   operators directly).
2. **operator chaining** -- see :mod:`repro.plan.chaining`.

The Table layer adds its own relational rewrites upstream of this
(:mod:`repro.table.optimizer`); this module is about the dataflow graph
itself.
"""

from __future__ import annotations

from typing import List, Set

from repro.plan.chaining import build_job_graph
from repro.plan.graph import (
    CutoverNode,
    GraphValidationError,
    JobGraph,
    StreamGraph,
)


def validate_cutover_placement(graph: StreamGraph) -> None:
    """Cutover nodes must *be* the source: a hybrid history+stream
    hand-off downstream of other operators has no offsets to replay, so
    the planner rejects it instead of silently losing exactly-once."""
    for node in graph.nodes.values():
        if not isinstance(node, CutoverNode):
            continue
        if not node.is_source or graph.in_edges(node.node_id):
            raise GraphValidationError(
                "cutover node %r must be a source with no inputs "
                "(compose then_stream/with_history on untransformed "
                "sources)" % node.name)


def reachable_to_sinks(graph: StreamGraph) -> Set[int]:
    """Node ids with a path to at least one sink (sinks included)."""
    sinks = [node.node_id for node in graph.nodes.values() if node.is_sink]
    reachable: Set[int] = set()
    frontier = list(sinks)
    while frontier:
        node_id = frontier.pop()
        if node_id in reachable:
            continue
        reachable.add(node_id)
        for edge in graph.in_edges(node_id):
            frontier.append(edge.source_id)
    return reachable


def eliminate_dead_branches(graph: StreamGraph) -> List[str]:
    """Remove operators that cannot influence any sink; returns the
    names of the removed operators (for explain/diagnostics)."""
    if not any(node.is_sink for node in graph.nodes.values()):
        return []  # sink-free program: nothing to anchor liveness on
    live = reachable_to_sinks(graph)
    dead = [node_id for node_id in graph.nodes if node_id not in live]
    if not dead:
        return []
    removed_names = [graph.nodes[node_id].name for node_id in sorted(dead)]
    for node_id in dead:
        del graph.nodes[node_id]
    graph._edges = [edge for edge in graph.edges
                    if edge.source_id in live and edge.target_id in live]
    return removed_names


def optimize(graph: StreamGraph, chaining: bool = True) -> JobGraph:
    """The full pipeline: cutover placement validation, dead-branch
    elimination, then chaining."""
    validate_cutover_placement(graph)
    eliminate_dead_branches(graph)
    return build_job_graph(graph, chaining=chaining)
