"""Logical plans, the chaining optimizer and plan explanation."""

from repro.plan.chaining import build_job_graph
from repro.plan.explain import explain_job_graph, explain_stream_graph
from repro.plan.optimizer import eliminate_dead_branches, optimize
from repro.plan.graph import (
    GraphValidationError,
    JobEdge,
    JobGraph,
    JobVertex,
    StreamEdge,
    StreamGraph,
    StreamNode,
)

__all__ = [
    "eliminate_dead_branches",
    "optimize",
    "build_job_graph",
    "explain_job_graph",
    "explain_stream_graph",
    "GraphValidationError",
    "JobEdge",
    "JobGraph",
    "JobVertex",
    "StreamEdge",
    "StreamGraph",
    "StreamNode",
]
