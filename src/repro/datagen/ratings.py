"""Rating-stream generator with latent-factor ground truth
(personalized recommendations).

Ratings come from hidden user/item factor vectors plus biases and noise,
so a streaming matrix factorisation model has real structure to recover:
its prequential RMSE should approach the noise floor, beating the
global-mean and per-item-mean baselines.
"""

from __future__ import annotations

import random
from typing import Iterator, List, NamedTuple


class Rating(NamedTuple):
    user: str
    item: str
    value: float
    timestamp: int


class RatingStreamGenerator:
    """Seeded rating stream over a hidden latent-factor model."""

    def __init__(self, num_users: int = 200, num_items: int = 100,
                 rank: int = 4, noise: float = 0.3,
                 global_mean: float = 3.5, seed: int = 31) -> None:
        if num_users <= 0 or num_items <= 0 or rank <= 0:
            raise ValueError("population sizes and rank must be positive")
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.num_users = num_users
        self.num_items = num_items
        self.rank = rank
        self.noise = noise
        self.global_mean = global_mean
        self.seed = seed
        rng = random.Random(seed)
        scale = 1.0 / rank ** 0.5
        self._user_vectors = [[rng.gauss(0, scale) for _ in range(rank)]
                              for _ in range(num_users)]
        self._item_vectors = [[rng.gauss(0, scale) for _ in range(rank)]
                              for _ in range(num_items)]
        self._user_bias = [rng.gauss(0, 0.3) for _ in range(num_users)]
        self._item_bias = [rng.gauss(0, 0.3) for _ in range(num_items)]

    def true_rating(self, user: int, item: int) -> float:
        dot = sum(u * i for u, i in zip(self._user_vectors[user],
                                        self._item_vectors[item]))
        return (self.global_mean + self._user_bias[user]
                + self._item_bias[item] + dot)

    def ratings(self, count: int, gap_ms: int = 100) -> Iterator[Rating]:
        rng = random.Random(self.seed + 1)
        for index in range(count):
            user = rng.randrange(self.num_users)
            item = rng.randrange(self.num_items)
            value = self.true_rating(user, item) + rng.gauss(0, self.noise)
            value = max(1.0, min(5.0, value))
            yield Rating("u%d" % user, "i%d" % item, value, index * gap_ms)

    def noise_floor_rmse(self) -> float:
        """The irreducible error of any predictor (the label noise)."""
        return self.noise
