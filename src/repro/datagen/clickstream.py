"""Clickstream generator with churn structure (customer retention).

Simulates users whose hidden *engagement* decays over time; low
engagement produces the behavioural signals a churn model should pick
up (shorter sessions, longer absences, more support-page visits) and
ultimately churn.  The label is derivable from the stream itself
("no activity for `churn_horizon`"), so the example pipeline can
construct training data the way a real retention pipeline would.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

ACTIONS = ("view", "search", "purchase", "support", "settings")


class ClickEvent(NamedTuple):
    user: str
    action: str
    timestamp: int
    session_id: int
    dwell_ms: int


class LabeledExample(NamedTuple):
    """One training example: behavioural features plus the churn label."""

    user: str
    features: Dict[str, float]
    label: int  # 1 = churned


class ClickstreamGenerator:
    """Seeded, replayable clickstream over a fixed user population."""

    def __init__(self, num_users: int = 100, days: int = 30,
                 events_per_user_day: float = 8.0,
                 churn_fraction: float = 0.3, seed: int = 17) -> None:
        if num_users <= 0 or days <= 0:
            raise ValueError("num_users and days must be positive")
        if not 0 <= churn_fraction <= 1:
            raise ValueError("churn_fraction must be in [0, 1]")
        self.num_users = num_users
        self.days = days
        self.events_per_user_day = events_per_user_day
        self.churn_fraction = churn_fraction
        self.seed = seed
        self._day_ms = 24 * 3600 * 1000

    def _user_plan(self, rng: random.Random, index: int) -> Tuple[str, bool, int]:
        user = "user-%04d" % index
        churns = rng.random() < self.churn_fraction
        churn_day = (rng.randint(self.days // 3, 2 * self.days // 3)
                     if churns else self.days + 1)
        return user, churns, churn_day

    def events(self) -> List[ClickEvent]:
        """The full event log, globally sorted by timestamp."""
        rng = random.Random(self.seed)
        log: List[ClickEvent] = []
        session_counter = 0
        for index in range(self.num_users):
            user, churns, churn_day = self._user_plan(rng, index)
            for day in range(self.days):
                if day >= churn_day:
                    break  # churned: silence
                # Engagement decays as a user approaches churn.
                remaining = churn_day - day
                engagement = (min(1.0, remaining / 10.0) if churns else 1.0)
                expected = self.events_per_user_day * engagement
                count = max(0, int(rng.gauss(expected, expected * 0.3)))
                if count == 0:
                    continue
                session_counter += 1
                base_ts = day * self._day_ms + rng.randint(0, self._day_ms // 2)
                for position in range(count):
                    # Disengaging users visit support pages more.
                    weights = [5, 3, 1 + 2 * engagement,
                               1 + 3 * (1 - engagement), 1]
                    action = rng.choices(ACTIONS, weights=weights)[0]
                    dwell = max(100, int(rng.gauss(
                        8000 * engagement + 1000, 2000)))
                    log.append(ClickEvent(
                        user, action,
                        base_ts + position * rng.randint(5_000, 60_000),
                        session_counter, dwell))
        log.sort(key=lambda event: event.timestamp)
        return log

    def labeled_examples(self, observation_days: int = 14,
                         churn_horizon_days: int = 7) -> List[LabeledExample]:
        """Features from an observation window, label = silent afterwards."""
        if observation_days + churn_horizon_days > self.days:
            raise ValueError("observation + horizon must fit in the range")
        observe_end = observation_days * self._day_ms
        horizon_end = (observation_days + churn_horizon_days) * self._day_ms
        per_user: Dict[str, Dict[str, float]] = {}
        active_after: Dict[str, bool] = {}
        for event in self.events():
            stats = per_user.setdefault(event.user, {
                "events": 0.0, "purchases": 0.0, "support": 0.0,
                "dwell_total": 0.0, "last_ts": 0.0})
            if event.timestamp < observe_end:
                stats["events"] += 1
                stats["dwell_total"] += event.dwell_ms
                stats["last_ts"] = max(stats["last_ts"],
                                       float(event.timestamp))
                if event.action == "purchase":
                    stats["purchases"] += 1
                elif event.action == "support":
                    stats["support"] += 1
            elif event.timestamp < horizon_end:
                active_after[event.user] = True
        examples: List[LabeledExample] = []
        for user, stats in sorted(per_user.items()):
            if stats["events"] == 0:
                continue
            recency_days = (observe_end - stats["last_ts"]) / self._day_ms
            features = {
                "events_per_day": stats["events"] / observation_days,
                "purchase_rate": stats["purchases"] / stats["events"],
                "support_rate": stats["support"] / stats["events"],
                "avg_dwell_s": stats["dwell_total"] / stats["events"] / 1000,
                "recency_days": recency_days,
                "bias_proxy": 1.0,
            }
            label = 0 if active_after.get(user, False) else 1
            examples.append(LabeledExample(user, features, label))
        return examples
