"""Multilingual document stream (multilingual Web processing).

Documents are sampled word-by-word from per-language pools derived from
the language-identification seed corpora, with controllable length and
language mix -- ground-truth labels included so the pipeline's
identification accuracy is measurable.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence

from repro.ml.langid import _SEED_CORPORA


class Document(NamedTuple):
    doc_id: int
    language: str
    text: str
    timestamp: int


class DocumentStreamGenerator:
    """Seeded multilingual document stream."""

    def __init__(self, languages: Optional[Sequence[str]] = None,
                 words_per_doc: int = 30, seed: int = 41) -> None:
        if words_per_doc <= 0:
            raise ValueError("words_per_doc must be positive")
        self.languages = list(languages or sorted(_SEED_CORPORA))
        unknown = [lang for lang in self.languages
                   if lang not in _SEED_CORPORA]
        if unknown:
            raise ValueError("no corpus for languages: %r" % unknown)
        self.words_per_doc = words_per_doc
        self.seed = seed
        self._pools: Dict[str, List[str]] = {
            language: _SEED_CORPORA[language].split()
            for language in self.languages}

    def documents(self, count: int, gap_ms: int = 200) -> Iterator[Document]:
        rng = random.Random(self.seed)
        for index in range(count):
            language = rng.choice(self.languages)
            pool = self._pools[language]
            words = [rng.choice(pool) for _ in range(self.words_per_doc)]
            yield Document(index, language, " ".join(words), index * gap_ms)
