"""Arrival processes and skew: the shape knobs of every workload.

All generators are seeded and re-creatable, which is what makes the
whole benchmark suite reproducible and the engine's sources replayable
after recovery.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List


class UniformArrivals:
    """Fixed inter-arrival gap: ``rate`` events per 1000 time units."""

    def __init__(self, rate_per_second: float) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate_per_second = rate_per_second

    def timestamps(self, count: int, start: int = 0) -> Iterator[int]:
        gap = 1000.0 / self.rate_per_second
        for index in range(count):
            yield start + int(index * gap)


class PoissonArrivals:
    """Exponential inter-arrival gaps at ``rate`` events per second."""

    def __init__(self, rate_per_second: float, seed: int = 7) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate_per_second = rate_per_second
        self.seed = seed

    def timestamps(self, count: int, start: int = 0) -> Iterator[int]:
        rng = random.Random(self.seed)
        now = float(start)
        for _ in range(count):
            now += rng.expovariate(self.rate_per_second) * 1000.0
            yield int(now)


class BurstyArrivals:
    """Alternates a quiet base rate with periodic bursts -- the workload
    that stresses backpressure and rate-dependent transfer (E6)."""

    def __init__(self, base_rate: float, burst_rate: float,
                 period_ms: int = 10_000, burst_fraction: float = 0.2,
                 seed: int = 11) -> None:
        if base_rate <= 0 or burst_rate <= 0:
            raise ValueError("rates must be positive")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if period_ms <= 0:
            raise ValueError("period must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.period_ms = period_ms
        self.burst_fraction = burst_fraction
        self.seed = seed

    def timestamps(self, count: int, start: int = 0) -> Iterator[int]:
        rng = random.Random(self.seed)
        now = float(start)
        burst_window = self.period_ms * self.burst_fraction
        for _ in range(count):
            in_burst = (now % self.period_ms) < burst_window
            rate = self.burst_rate if in_burst else self.base_rate
            now += rng.expovariate(rate) * 1000.0
            yield int(now)


class ZipfSampler:
    """Zipfian key popularity: key 0 is hottest; exponent controls skew."""

    def __init__(self, num_keys: int, exponent: float = 1.1,
                 seed: int = 3) -> None:
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self.num_keys = num_keys
        self.exponent = exponent
        self._rng = random.Random(seed)
        weights = [1.0 / (rank ** exponent)
                   for rank in range(1, num_keys + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def sample(self) -> int:
        import bisect
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]
