"""Seeded time-series generators for the I2 experiments (E6/E7)."""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Tuple

Point = Tuple[float, float]


def random_walk(count: int, t_min: float = 0.0, t_max: float = 1000.0,
                step: float = 2.0, start_value: float = 0.0,
                clamp: Tuple[float, float] = (-100.0, 100.0),
                seed: int = 5) -> List[Point]:
    """A bounded random walk sampled uniformly over ``[t_min, t_max]``."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    value = start_value
    points: List[Point] = []
    for index in range(count):
        ts = t_min + (t_max - t_min) * index / max(count - 1, 1)
        value += rng.uniform(-step, step)
        value = max(clamp[0], min(clamp[1], value))
        points.append((ts, value))
    return points


def noisy_waves(count: int, t_min: float = 0.0, t_max: float = 1000.0,
                amplitude: float = 50.0, noise: float = 5.0,
                seed: int = 6) -> List[Point]:
    """Superposed sines with noise: the oscillating workload where
    sampling-based reduction visibly fails (E7)."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    points: List[Point] = []
    for index in range(count):
        ts = t_min + (t_max - t_min) * index / max(count - 1, 1)
        value = (amplitude * math.sin(index / 7.0)
                 + amplitude * 0.4 * math.sin(index / 2.1)
                 + rng.uniform(-noise, noise))
        points.append((ts, value))
    return points


def spiky_series(count: int, t_min: float = 0.0, t_max: float = 1000.0,
                 spike_probability: float = 0.02, spike_height: float = 80.0,
                 base_noise: float = 3.0, seed: int = 9) -> List[Point]:
    """Mostly flat with rare tall spikes: the worst case for averaging
    reducers (PAA flattens the spikes; M4 keeps them)."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    points: List[Point] = []
    for index in range(count):
        ts = t_min + (t_max - t_min) * index / max(count - 1, 1)
        if rng.random() < spike_probability:
            value = spike_height * (1 if rng.random() < 0.5 else -1)
        else:
            value = rng.uniform(-base_noise, base_noise)
        points.append((ts, value))
    return points
