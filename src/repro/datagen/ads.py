"""Ad-impression generator with learnable CTR structure (target
advertisement).

Each impression pairs a user segment with a campaign; the click
probability comes from a hidden logistic model over the categorical
cross features, so an online learner (FTRL) should approach the hidden
model's AUC while a frequency-only baseline cannot.
"""

from __future__ import annotations

import random
from typing import Iterator, List, NamedTuple, Tuple

from repro.ml.online_lr import sigmoid


class Impression(NamedTuple):
    user: str
    segment: str
    campaign: str
    site: str
    timestamp: int
    clicked: int

    def features(self) -> List[str]:
        """The hashed-feature view an online CTR model consumes."""
        return [
            "segment=%s" % self.segment,
            "campaign=%s" % self.campaign,
            "site=%s" % self.site,
            "segxcamp=%s|%s" % (self.segment, self.campaign),
            "bias",
        ]


class AdStreamGenerator:
    """Seeded impression stream with a hidden logistic ground truth."""

    def __init__(self, num_users: int = 500, num_campaigns: int = 20,
                 num_segments: int = 8, num_sites: int = 12,
                 base_ctr_logit: float = -3.0, seed: int = 23) -> None:
        if min(num_users, num_campaigns, num_segments, num_sites) <= 0:
            raise ValueError("population sizes must be positive")
        self.num_users = num_users
        self.num_campaigns = num_campaigns
        self.num_segments = num_segments
        self.num_sites = num_sites
        self.base_ctr_logit = base_ctr_logit
        self.seed = seed
        rng = random.Random(seed)
        self._segment_weight = {s: rng.gauss(0, 0.8)
                                for s in range(num_segments)}
        self._campaign_weight = {c: rng.gauss(0, 0.8)
                                 for c in range(num_campaigns)}
        self._site_weight = {s: rng.gauss(0, 0.4) for s in range(num_sites)}
        self._affinity = {(s, c): rng.gauss(0, 1.2)
                          for s in range(num_segments)
                          for c in range(num_campaigns)}
        self._user_segment = {u: rng.randrange(num_segments)
                              for u in range(num_users)}

    def true_ctr(self, segment: int, campaign: int, site: int) -> float:
        logit = (self.base_ctr_logit
                 + self._segment_weight[segment]
                 + self._campaign_weight[campaign]
                 + self._site_weight[site]
                 + self._affinity[(segment, campaign)])
        return sigmoid(logit)

    def impressions(self, count: int,
                    gap_ms: int = 50) -> Iterator[Impression]:
        rng = random.Random(self.seed + 1)
        for index in range(count):
            user = rng.randrange(self.num_users)
            segment = self._user_segment[user]
            campaign = rng.randrange(self.num_campaigns)
            site = rng.randrange(self.num_sites)
            probability = self.true_ctr(segment, campaign, site)
            clicked = 1 if rng.random() < probability else 0
            yield Impression(
                "u%d" % user, "seg%d" % segment, "camp%d" % campaign,
                "site%d" % site, index * gap_ms, clicked)

    def bayes_auc_bound(self, sample: int = 5000) -> float:
        """AUC of the *hidden* model on its own stream: the ceiling any
        learner can reach."""
        from repro.ml.evaluation import auc
        rng = random.Random(self.seed + 2)
        labels, scores = [], []
        for impression in self.impressions(sample):
            segment = int(impression.segment[3:])
            campaign = int(impression.campaign[4:])
            site = int(impression.site[4:])
            labels.append(impression.clicked)
            scores.append(self.true_ctr(segment, campaign, site))
        return auc(labels, scores)
