"""Seeded, replayable workload generators for examples and benchmarks."""

from repro.datagen.ads import AdStreamGenerator, Impression
from repro.datagen.arrivals import (
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
    ZipfSampler,
)
from repro.datagen.clickstream import (
    ClickEvent,
    ClickstreamGenerator,
    LabeledExample,
)
from repro.datagen.docs import Document, DocumentStreamGenerator
from repro.datagen.ratings import Rating, RatingStreamGenerator
from repro.datagen.timeseries import noisy_waves, random_walk, spiky_series

__all__ = [
    "AdStreamGenerator",
    "Impression",
    "BurstyArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "ZipfSampler",
    "ClickEvent",
    "ClickstreamGenerator",
    "LabeledExample",
    "Document",
    "DocumentStreamGenerator",
    "Rating",
    "RatingStreamGenerator",
    "noisy_waves",
    "random_walk",
    "spiky_series",
]
