"""State descriptors and state handles for keyed operator state.

Mirrors the Flink state API that the STREAMLINE programming model
inherits: an operator declares *what* state it needs via a descriptor
(name + kind + optional default/merge function), and receives a handle
whose reads and writes are implicitly scoped to the key of the record
currently being processed.

Handles are thin views over a :class:`~repro.state.backend.KeyedStateBackend`;
they hold no data themselves, so snapshotting the backend captures
everything.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class StateDescriptor:
    """Name and semantics of one piece of keyed state."""

    kind = "value"

    def __init__(self, name: str, default: Any = None) -> None:
        if not name:
            raise ValueError("state name must be non-empty")
        self.name = name
        self.default = default

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


class ValueStateDescriptor(StateDescriptor):
    kind = "value"


class ListStateDescriptor(StateDescriptor):
    kind = "list"


class MapStateDescriptor(StateDescriptor):
    kind = "map"


class ReducingStateDescriptor(StateDescriptor):
    """State that folds every added element through ``reduce_fn``."""

    kind = "reducing"

    def __init__(self, name: str,
                 reduce_fn: Callable[[Any, Any], Any]) -> None:
        super().__init__(name)
        self.reduce_fn = reduce_fn


class AggregatingStateDescriptor(StateDescriptor):
    """State that maintains an accumulator through an AggregateFunction-like
    object exposing ``create_accumulator/add/get_result``."""

    kind = "aggregating"

    def __init__(self, name: str, aggregate_function: Any) -> None:
        super().__init__(name)
        self.aggregate_function = aggregate_function


class _KeyScoped:
    """Shared plumbing: resolve the per-key slot inside the backend."""

    def __init__(self, backend: Any, descriptor: StateDescriptor) -> None:
        self._backend = backend
        self._descriptor = descriptor

    def _table(self) -> Dict[Any, Any]:
        return self._backend.table(self._descriptor.name)

    def _key(self) -> Any:
        key = self._backend.current_key
        if key is _NO_KEY:
            raise RuntimeError(
                "keyed state %r accessed outside of a keyed context"
                % self._descriptor.name)
        return key


_NO_KEY = object()


class ValueState(_KeyScoped):
    """A single value per key."""

    def value(self) -> Any:
        return self._table().get(self._key(), self._descriptor.default)

    def update(self, value: Any) -> None:
        self._table()[self._key()] = value

    def clear(self) -> None:
        self._table().pop(self._key(), None)


class ListState(_KeyScoped):
    """An appendable list per key."""

    def get(self) -> List[Any]:
        return self._table().get(self._key(), [])

    def add(self, value: Any) -> None:
        self._table().setdefault(self._key(), []).append(value)

    def update(self, values: List[Any]) -> None:
        self._table()[self._key()] = list(values)

    def clear(self) -> None:
        self._table().pop(self._key(), None)


class MapState(_KeyScoped):
    """A hash map per key."""

    def _map(self, create: bool = False) -> Dict[Any, Any]:
        table = self._table()
        key = self._key()
        if create:
            return table.setdefault(key, {})
        return table.get(key, {})

    def get(self, map_key: Any, default: Any = None) -> Any:
        return self._map().get(map_key, default)

    def put(self, map_key: Any, value: Any) -> None:
        self._map(create=True)[map_key] = value

    def remove(self, map_key: Any) -> None:
        self._map(create=True).pop(map_key, None)

    def contains(self, map_key: Any) -> bool:
        return map_key in self._map()

    def keys(self) -> Iterator[Any]:
        return iter(list(self._map().keys()))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(list(self._map().items()))

    def is_empty(self) -> bool:
        return not self._map()

    def clear(self) -> None:
        self._table().pop(self._key(), None)


class ReducingState(_KeyScoped):
    """Folds added values through the descriptor's reduce function."""

    def add(self, value: Any) -> None:
        table = self._table()
        key = self._key()
        if key in table:
            table[key] = self._descriptor.reduce_fn(table[key], value)
        else:
            table[key] = value

    def get(self) -> Any:
        return self._table().get(self._key())

    def clear(self) -> None:
        self._table().pop(self._key(), None)


class AggregatingState(_KeyScoped):
    """Maintains an accumulator; ``get`` lowers it to a result."""

    def add(self, value: Any) -> None:
        table = self._table()
        key = self._key()
        agg = self._descriptor.aggregate_function
        if key not in table:
            table[key] = agg.create_accumulator()
        table[key] = agg.add(value, table[key])

    def get(self) -> Any:
        table = self._table()
        key = self._key()
        if key not in table:
            return None
        return self._descriptor.aggregate_function.get_result(table[key])

    def clear(self) -> None:
        self._table().pop(self._key(), None)


_HANDLE_TYPES = {
    "value": ValueState,
    "list": ListState,
    "map": MapState,
    "reducing": ReducingState,
    "aggregating": AggregatingState,
}


def create_handle(backend: Any, descriptor: StateDescriptor) -> _KeyScoped:
    try:
        handle_type = _HANDLE_TYPES[descriptor.kind]
    except KeyError:
        raise ValueError("unknown state kind %r" % descriptor.kind) from None
    return handle_type(backend, descriptor)
