"""Keyed state, state backends and checkpointing (asynchronous barrier
snapshotting)."""

from repro.state.arrangement import (
    Arrangement,
    ArrangementHandle,
    ShardedArrangement,
    VersionCompactedError,
)
from repro.state.backend import KeyedStateBackend
from repro.state.checkpoint import (
    CheckpointStore,
    CompletedCheckpoint,
    PendingCheckpoint,
    TaskSnapshot,
)
from repro.state.durable import (
    CheckpointCorruptionError,
    DurableCheckpointStore,
)
from repro.state.savepoint import OperatorSnapshot, Savepoint
from repro.state.timetravel import TimeTravelError, savepoint_from_checkpoint
from repro.state.descriptors import (
    AggregatingState,
    AggregatingStateDescriptor,
    ListState,
    ListStateDescriptor,
    MapState,
    MapStateDescriptor,
    ReducingState,
    ReducingStateDescriptor,
    StateDescriptor,
    ValueState,
    ValueStateDescriptor,
)

__all__ = [
    "Arrangement",
    "ArrangementHandle",
    "ShardedArrangement",
    "VersionCompactedError",
    "KeyedStateBackend",
    "OperatorSnapshot",
    "Savepoint",
    "CheckpointCorruptionError",
    "CheckpointStore",
    "CompletedCheckpoint",
    "DurableCheckpointStore",
    "PendingCheckpoint",
    "TaskSnapshot",
    "TimeTravelError",
    "savepoint_from_checkpoint",
    "AggregatingState",
    "AggregatingStateDescriptor",
    "ListState",
    "ListStateDescriptor",
    "MapState",
    "MapStateDescriptor",
    "ReducingState",
    "ReducingStateDescriptor",
    "StateDescriptor",
    "ValueState",
    "ValueStateDescriptor",
]
