"""Checkpoint bookkeeping for asynchronous barrier snapshotting (ABS).

The coordinator side of fault tolerance: a :class:`PendingCheckpoint`
collects per-subtask snapshots as barriers flow through the job; once
every stateful subtask has acknowledged, it becomes a
:class:`CompletedCheckpoint` held by the :class:`CheckpointStore`.
Recovery replays the job from the latest completed checkpoint: operator
state is restored and replayable sources rewind to their recorded
offsets.

The actual barrier injection/alignment lives in the runtime
(:mod:`repro.runtime.task`); this module is pure bookkeeping so it can be
unit-tested without an engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

SubtaskId = Tuple[str, int]  # (operator id, subtask index)


class TaskSnapshot:
    """Everything one subtask contributes to a checkpoint."""

    __slots__ = ("subtask", "keyed_state", "operator_state", "timers",
                 "partitioners")

    def __init__(self, subtask: SubtaskId, keyed_state: Dict[str, Dict[Any, Any]],
                 operator_state: Any = None, timers: Optional[dict] = None,
                 partitioners: Optional[Dict[str, Any]] = None) -> None:
        self.subtask = subtask
        self.keyed_state = keyed_state
        self.operator_state = operator_state
        self.timers = timers or {}
        #: Routing state of stateful output partitioners (rebalance
        #: cursors), keyed by output-edge position -- part of the
        #: consistent cut so post-restore round-robin placement replays
        #: the original run.
        self.partitioners = partitioners or {}

    def __repr__(self) -> str:
        return "TaskSnapshot(%s#%d)" % self.subtask


class PendingCheckpoint:
    """A checkpoint in flight: barriers injected, acks being collected."""

    def __init__(self, checkpoint_id: int, expected: Set[SubtaskId],
                 trigger_time: int) -> None:
        if not expected:
            raise ValueError("a checkpoint needs at least one participant")
        self.checkpoint_id = checkpoint_id
        self.trigger_time = trigger_time
        self.abort_reason: Optional[str] = None
        self._expected = set(expected)
        self._snapshots: Dict[SubtaskId, TaskSnapshot] = {}

    def acknowledge(self, snapshot: TaskSnapshot) -> None:
        if self.aborted:
            raise RuntimeError(
                "checkpoint %d was aborted (%s); late ack from %r"
                % (self.checkpoint_id, self.abort_reason, snapshot.subtask))
        if snapshot.subtask not in self._expected:
            raise ValueError(
                "unexpected ack from %r for checkpoint %d"
                % (snapshot.subtask, self.checkpoint_id))
        self._snapshots[snapshot.subtask] = snapshot

    def abort(self, reason: str) -> None:
        """Mark this checkpoint as failed; collected snapshots are
        discarded by the coordinator.  Aborting is how the coordinator
        survives wedges (a participant finishing before acking, a
        barrier lost to a stalled source) instead of silently never
        checkpointing again."""
        self.abort_reason = reason

    @property
    def aborted(self) -> bool:
        return self.abort_reason is not None

    def is_expired(self, now: int, timeout_ms: Optional[int]) -> bool:
        """Whether this checkpoint has been in flight longer than the
        coordinator tolerates."""
        return timeout_ms is not None and now - self.trigger_time > timeout_ms

    @property
    def is_complete(self) -> bool:
        return set(self._snapshots) == self._expected

    @property
    def pending_subtasks(self) -> Set[SubtaskId]:
        return self._expected - set(self._snapshots)

    def seal(self, completion_time: int) -> "CompletedCheckpoint":
        if self.aborted:
            raise RuntimeError("cannot seal aborted checkpoint %d (%s)"
                               % (self.checkpoint_id, self.abort_reason))
        if not self.is_complete:
            raise RuntimeError(
                "checkpoint %d still waiting on %r"
                % (self.checkpoint_id, sorted(self.pending_subtasks)))
        return CompletedCheckpoint(self.checkpoint_id, dict(self._snapshots),
                                   self.trigger_time, completion_time)


class CompletedCheckpoint:
    """An immutable, fully-acknowledged checkpoint."""

    def __init__(self, checkpoint_id: int,
                 snapshots: Dict[SubtaskId, TaskSnapshot],
                 trigger_time: int, completion_time: int) -> None:
        self.checkpoint_id = checkpoint_id
        self.snapshots = snapshots
        self.trigger_time = trigger_time
        self.completion_time = completion_time

    def snapshot_for(self, subtask: SubtaskId) -> Optional[TaskSnapshot]:
        return self.snapshots.get(subtask)

    @property
    def duration_ms(self) -> int:
        return self.completion_time - self.trigger_time

    def __repr__(self) -> str:
        return "CompletedCheckpoint(id=%d, tasks=%d)" % (
            self.checkpoint_id, len(self.snapshots))


class CheckpointStore:
    """Retains the most recent completed checkpoints (like Flink's
    ``state.checkpoints.num-retained``)."""

    def __init__(self, max_retained: int = 3) -> None:
        if max_retained < 1:
            raise ValueError("must retain at least one checkpoint")
        self._max_retained = max_retained
        self._completed: List[CompletedCheckpoint] = []

    def add(self, checkpoint: CompletedCheckpoint) -> None:
        self._completed.append(checkpoint)
        self._completed.sort(key=lambda c: c.checkpoint_id)
        while len(self._completed) > self._max_retained:
            self._completed.pop(0)

    def discard(self, checkpoint_id: int) -> None:
        """Drop one retained checkpoint (it failed durability
        verification and must not be offered for recovery again)."""
        self._completed = [checkpoint for checkpoint in self._completed
                           if checkpoint.checkpoint_id != checkpoint_id]

    @property
    def latest(self) -> Optional[CompletedCheckpoint]:
        return self._completed[-1] if self._completed else None

    @property
    def all_retained(self) -> List[CompletedCheckpoint]:
        return list(self._completed)

    def __len__(self) -> int:
        return len(self._completed)
