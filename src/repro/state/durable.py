"""Durable, checksummed checkpoint persistence.

The in-memory :class:`~repro.state.checkpoint.CheckpointStore` is enough
for in-process recovery, but the multiprocess backend's failure domain
is the OS: a respawned fleet must be able to restore from artifacts that
survived torn writes, and a corrupted artifact must be *detected* -- not
silently unpickled into garbage state.  This module persists every
sealed checkpoint as a directory::

    <dir>/chk-<id>/subtask-<n>.snap   one CRC-framed pickle per subtask
    <dir>/chk-<id>/manifest.json      the commit record, written last

Each snapshot file carries a header (magic, CRC-32 of the payload,
payload length) and is published via write-to-temp + ``os.replace``, so
a file is either absent or complete-and-verifiable.  The manifest --
also replace-committed -- names every snapshot file with its expected
CRC and length and is the *commit point*: a directory without a
manifest is a torn checkpoint and is ignored (then garbage-collected).

Restore goes through :meth:`DurableCheckpointStore.load_latest_verified`,
which re-reads artifacts from disk (never trusts in-memory copies --
that is the whole point), walks retained checkpoints newest to oldest,
and falls back past any checkpoint whose manifest is unreadable, whose
files are missing, or whose checksums disagree.  Corrupted checkpoints
are counted, reported, and deleted so the next walk does not re-verify
them.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import struct
import zlib
from typing import Any, Dict, List, Optional

from repro.state.checkpoint import (
    CheckpointStore,
    CompletedCheckpoint,
    TaskSnapshot,
)

_MAGIC = b"RSNAP1\n"
_HEADER = struct.Struct("<IQ")  # crc32, payload length
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_MANIFEST = "manifest.json"
_DIR_PREFIX = "chk-"


class CheckpointCorruptionError(Exception):
    """A persisted checkpoint failed verification (torn file, checksum
    mismatch, missing artifact)."""


def write_snapshot_file(path: str, snapshot: TaskSnapshot) -> Dict[str, Any]:
    """Persist one subtask snapshot; returns its manifest entry."""
    payload = pickle.dumps(snapshot, _PICKLE_PROTOCOL)
    crc = zlib.crc32(payload)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_HEADER.pack(crc, len(payload)))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return {"file": os.path.basename(path), "crc32": crc,
            "length": len(payload),
            "subtask": list(snapshot.subtask)}


def read_snapshot_file(path: str,
                       expected_crc: Optional[int] = None) -> TaskSnapshot:
    """Read and verify one snapshot file; raises
    :class:`CheckpointCorruptionError` on any mismatch."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointCorruptionError(
            "snapshot file %s unreadable: %s" % (path, exc))
    header_end = len(_MAGIC) + _HEADER.size
    if len(blob) < header_end or not blob.startswith(_MAGIC):
        raise CheckpointCorruptionError(
            "snapshot file %s: bad or truncated header" % path)
    crc, length = _HEADER.unpack_from(blob, len(_MAGIC))
    payload = blob[header_end:]
    if len(payload) != length:
        raise CheckpointCorruptionError(
            "snapshot file %s: torn payload (%d bytes, header says %d)"
            % (path, len(payload), length))
    if zlib.crc32(payload) != crc:
        raise CheckpointCorruptionError(
            "snapshot file %s: CRC mismatch (payload %08x, header %08x)"
            % (path, zlib.crc32(payload), crc))
    if expected_crc is not None and crc != expected_crc:
        raise CheckpointCorruptionError(
            "snapshot file %s: CRC %08x disagrees with manifest %08x"
            % (path, crc, expected_crc))
    try:
        snapshot = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointCorruptionError(
            "snapshot file %s: payload does not unpickle: %r" % (path, exc))
    if not isinstance(snapshot, TaskSnapshot):
        raise CheckpointCorruptionError(
            "snapshot file %s: payload is %r, not a TaskSnapshot"
            % (path, type(snapshot).__name__))
    return snapshot


class DurableCheckpointStore(CheckpointStore):
    """A :class:`CheckpointStore` that also persists every sealed
    checkpoint to ``directory`` and can restore from disk with
    verification and fallback.

    The directory is job-scoped: constructing a store wipes stale
    ``chk-*`` entries left by a previous job, because restoring another
    job's operator state would be silent corruption of the worst kind.
    ``fresh=False`` attaches to the directory *without* wiping -- the
    time-travel reader (:mod:`repro.state.timetravel`) uses it to load
    checkpoints a dead process left behind.
    """

    def __init__(self, directory: str, max_retained: int = 3,
                 fresh: bool = True) -> None:
        super().__init__(max_retained)
        self.directory = directory
        self.checkpoints_persisted = 0
        self.corruptions_detected = 0
        self.restore_fallbacks = 0
        os.makedirs(directory, exist_ok=True)
        if fresh:
            for name in os.listdir(directory):
                if name.startswith(_DIR_PREFIX):
                    shutil.rmtree(os.path.join(directory, name),
                                  ignore_errors=True)

    # -- persistence --------------------------------------------------------

    def _path_for(self, checkpoint_id: int) -> str:
        return os.path.join(self.directory, "%s%d"
                            % (_DIR_PREFIX, checkpoint_id))

    def add(self, checkpoint: CompletedCheckpoint) -> None:
        self._persist(checkpoint)
        super().add(checkpoint)
        self._gc()

    def _persist(self, checkpoint: CompletedCheckpoint) -> None:
        target = self._path_for(checkpoint.checkpoint_id)
        os.makedirs(target, exist_ok=True)
        entries: List[Dict[str, Any]] = []
        for index, subtask in enumerate(sorted(checkpoint.snapshots)):
            entries.append(write_snapshot_file(
                os.path.join(target, "subtask-%d.snap" % index),
                checkpoint.snapshots[subtask]))
        manifest = {
            "checkpoint_id": checkpoint.checkpoint_id,
            "trigger_time": checkpoint.trigger_time,
            "completion_time": checkpoint.completion_time,
            "snapshots": entries,
        }
        tmp = os.path.join(target, _MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, os.path.join(target, _MANIFEST))
        self.checkpoints_persisted += 1

    def _gc(self) -> None:
        """Delete persisted checkpoints that fell out of retention, and
        any torn directory that never got its manifest committed."""
        retained = {checkpoint.checkpoint_id
                    for checkpoint in self.all_retained}
        for checkpoint_id in self.persisted_ids():
            if checkpoint_id not in retained:
                shutil.rmtree(self._path_for(checkpoint_id),
                              ignore_errors=True)
        for name in os.listdir(self.directory):
            path = os.path.join(self.directory, name)
            if (name.startswith(_DIR_PREFIX) and os.path.isdir(path)
                    and not os.path.exists(os.path.join(path, _MANIFEST))):
                shutil.rmtree(path, ignore_errors=True)

    def persisted_ids(self) -> List[int]:
        """Committed (manifest present) checkpoint ids on disk, oldest
        first."""
        ids = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if not name.startswith(_DIR_PREFIX):
                continue
            if not os.path.exists(os.path.join(self.directory, name,
                                               _MANIFEST)):
                continue
            try:
                ids.append(int(name[len(_DIR_PREFIX):]))
            except ValueError:
                continue
        return sorted(ids)

    # -- verified restore ---------------------------------------------------

    def load_verified(self, checkpoint_id: int) -> CompletedCheckpoint:
        """Re-read one persisted checkpoint from disk, verifying the
        manifest and every snapshot checksum."""
        target = self._path_for(checkpoint_id)
        try:
            with open(os.path.join(target, _MANIFEST), "r",
                      encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointCorruptionError(
                "checkpoint %d: manifest unreadable: %r"
                % (checkpoint_id, exc))
        if manifest.get("checkpoint_id") != checkpoint_id:
            raise CheckpointCorruptionError(
                "checkpoint %d: manifest claims id %r"
                % (checkpoint_id, manifest.get("checkpoint_id")))
        snapshots: Dict[Any, TaskSnapshot] = {}
        for entry in manifest.get("snapshots", []):
            snapshot = read_snapshot_file(
                os.path.join(target, entry["file"]),
                expected_crc=entry.get("crc32"))
            recorded = tuple(entry.get("subtask", ()))
            if recorded and tuple(snapshot.subtask) != recorded:
                raise CheckpointCorruptionError(
                    "checkpoint %d: %s holds snapshot for %r, manifest "
                    "says %r" % (checkpoint_id, entry["file"],
                                 snapshot.subtask, recorded))
            snapshots[snapshot.subtask] = snapshot
        return CompletedCheckpoint(checkpoint_id, snapshots,
                                   manifest.get("trigger_time", 0),
                                   manifest.get("completion_time", 0))

    def load_latest_verified(self) -> Optional[CompletedCheckpoint]:
        """The recovery entry point: newest intact persisted checkpoint,
        falling back past (and deleting) corrupted ones.  Returns
        ``None`` when nothing on disk survives verification -- the
        caller restarts from scratch."""
        first = True
        for checkpoint_id in reversed(self.persisted_ids()):
            try:
                checkpoint = self.load_verified(checkpoint_id)
            except CheckpointCorruptionError:
                self.corruptions_detected += 1
                shutil.rmtree(self._path_for(checkpoint_id),
                              ignore_errors=True)
                self.discard(checkpoint_id)
                first = False
                continue
            if not first:
                self.restore_fallbacks += 1
            return checkpoint
        return None

    def durability_stats(self) -> Dict[str, int]:
        return {
            "persisted": self.checkpoints_persisted,
            "retained_on_disk": len(self.persisted_ids()),
            "corruptions_detected": self.corruptions_detected,
            "restore_fallbacks": self.restore_fallbacks,
        }
