"""Savepoints: portable job state, restorable at different parallelism.

A savepoint packages per-**operator** state (not per-vertex: operator
chaining changes with parallelism, so vertices are not stable
identities — operator *names* are, like Flink's operator UIDs). A new
execution of the same program can resume from it, including with a
different parallelism for stateful processing operators. Redistribution
rules:

* **keyed state** — tables are merged across the old subtasks and each
  new subtask keeps the keys the engine's hash partitioner would send it
  (`hash_key(key) % parallelism == subtask_index`);
* **timers** — merged in timestamp order (stable per old subtask; keys
  are disjoint across old subtasks, so cross-subtask ties are
  independent) and filtered by the same key hash;
* **operator (non-keyed) state** — delegated to
  :meth:`repro.runtime.operators.Operator.rescale_operator_state`;
  operators whose state is a per-record-key dict (Cutty, streaming M4,
  CEP, group-reduce) merge-and-filter, others accept equal states only
  or define their own combination (the window operator takes the
  minimum watermark). Sources cannot rescale (replay ownership is
  positional), so source operators must keep their parallelism.

Savepoint compatibility therefore requires unique operator names within
a program (pass ``name=`` to the fluent API); duplicates are rejected
when the savepoint is created.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, NamedTuple, Optional

from repro.runtime.partition import hash_key


class OperatorSnapshot(NamedTuple):
    """One operator instance's state on one old subtask."""

    subtask_index: int
    keyed_state: Dict[str, Dict[Any, Any]]
    operator_state: Any
    timers: dict


class Savepoint:
    """State of one job run, grouped by operator name."""

    def __init__(self, operators: Dict[str, List[OperatorSnapshot]],
                 checkpoint_id: int) -> None:
        self.operators = operators
        self.checkpoint_id = checkpoint_id

    def operator_names(self) -> List[str]:
        return sorted(self.operators)

    def snapshots_for(self, name: str) -> Optional[List[OperatorSnapshot]]:
        snapshots = self.operators.get(name)
        if snapshots is None:
            return None
        return sorted(snapshots, key=lambda snap: snap.subtask_index)

    def __repr__(self) -> str:
        return "Savepoint(checkpoint=%d, operators=%d)" % (
            self.checkpoint_id, len(self.operators))


def merge_keyed_state(snapshots: List[OperatorSnapshot],
                      subtask_index: int,
                      parallelism: int) -> Dict[str, Dict[Any, Any]]:
    """Union of all old subtasks' tables, filtered to this subtask's keys."""
    merged: Dict[str, Dict[Any, Any]] = {}
    for snapshot in snapshots:
        for state_name, table in snapshot.keyed_state.items():
            target = merged.setdefault(state_name, {})
            for key, value in table.items():
                if hash_key(key) % parallelism == subtask_index:
                    target[key] = value
    return merged


def merge_timers(snapshots: List[OperatorSnapshot], subtask_index: int,
                 parallelism: int) -> dict:
    """Timestamp-ordered merge of the old queues, filtered by key hash."""
    merged: dict = {}
    for queue_name in ("event_time", "processing_time"):
        streams = [snapshot.timers.get(queue_name, [])
                   for snapshot in snapshots]
        combined = list(heapq.merge(*streams, key=lambda entry: entry[0]))
        merged[queue_name] = [
            entry for entry in combined
            if hash_key(entry[1]) % parallelism == subtask_index]
    return merged
