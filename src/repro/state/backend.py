"""In-memory keyed state backend with copy-on-snapshot semantics.

One backend instance exists per operator subtask.  It owns every state
table the subtask declared and the notion of the *current key* -- set by
the task before each record/timer callback -- so handles created by
:func:`repro.state.descriptors.create_handle` resolve to the right slot.

Snapshots are deep copies taken synchronously at barrier alignment,
modelling the state-capture half of asynchronous barrier snapshotting.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable

from repro.state.descriptors import (
    StateDescriptor,
    _NO_KEY,
    create_handle,
)


class KeyedStateBackend:
    """Holds ``{state_name: {key: value}}`` tables for one subtask."""

    def __init__(self) -> None:
        self._tables: Dict[str, Dict[Any, Any]] = {}
        self._descriptors: Dict[str, StateDescriptor] = {}
        self.current_key: Any = _NO_KEY

    def get_state(self, descriptor: StateDescriptor):
        """Register ``descriptor`` (idempotently) and return a handle."""
        existing = self._descriptors.get(descriptor.name)
        if existing is not None and existing.kind != descriptor.kind:
            raise ValueError(
                "state %r already registered with kind %r, requested %r"
                % (descriptor.name, existing.kind, descriptor.kind))
        self._descriptors[descriptor.name] = descriptor
        self._tables.setdefault(descriptor.name, {})
        return create_handle(self, descriptor)

    def table(self, name: str) -> Dict[Any, Any]:
        return self._tables.setdefault(name, {})

    def set_current_key(self, key: Any) -> None:
        self.current_key = key

    def clear_current_key(self) -> None:
        self.current_key = _NO_KEY

    def keys(self, state_name: str) -> Iterable[Any]:
        return list(self._tables.get(state_name, {}).keys())

    def num_entries(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def snapshot(self) -> Dict[str, Dict[Any, Any]]:
        """A deep, immutable-by-convention copy of all tables."""
        return copy.deepcopy(self._tables)

    def restore(self, snapshot: Dict[str, Dict[Any, Any]]) -> None:
        self._tables = copy.deepcopy(snapshot)

    def clear_all(self) -> None:
        self._tables.clear()
