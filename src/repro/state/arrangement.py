"""Shared arrangements: one maintained multiversioned index, many readers.

An :class:`Arrangement` is the indexed state behind a join or group-by,
maintained *once* by the engine and shared by every query that needs the
same (input, key) pair -- McSherry et al.'s *Shared Arrangements*
applied to this engine's Table layer, the relational sibling of Cutty's
shared window slices.

The mechanics:

* Rows are inserted under their key into an **open** (unsealed) version.
  Each watermark advance **seals** the open version, making it readable;
  the sealed-version history is the multiversion index.
* Queries attach an :class:`ArrangementHandle` (refcounted).  A handle
  reads a **snapshot**: ``read_at(ts)`` resolves the watermark to the
  version sealed at-or-before ``ts`` and sees exactly the rows of that
  version -- never a torn, half-sealed view.
* **Compaction** folds versions at-or-below the low watermark of every
  attached reader into the base, keeping the version count flat while
  readers advance.  Reading below ``compacted_through`` raises
  :class:`VersionCompactedError`; reading at or above it is always
  exact, because the base *is* the compacted prefix.
* ``snapshot()`` / ``restore()`` round-trip the whole shard through the
  engine's checkpoint path (including ``DurableCheckpointStore``), so a
  crash mid-compaction restores a consistent index.

Rows keep a global, monotonically increasing sequence number so flat
iteration (used by the arrangement-backed join) replays arrival order
exactly -- that is what makes shared plans byte-identical to
independently planned ones.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.runtime.elements import MAX_TIMESTAMP

Row = Dict[str, Any]
Key = Tuple[Any, ...]


class VersionCompactedError(LookupError):
    """A reader asked for a version already folded into the base."""


class ArrangementHandle:
    """A refcounted, snapshot-consistent reader of one arrangement shard.

    Handles track a *low watermark*: the highest version the reader has
    declared it will never read below again (``advance_to``).  The
    arrangement only compacts versions every attached handle has
    advanced past.
    """

    def __init__(self, arrangement: "Arrangement") -> None:
        self._arrangement = arrangement
        self.attached = True
        #: highest version this reader has released for compaction.
        self.low_watermark = arrangement.compacted_through

    def advance_to(self, timestamp: int) -> int:
        """Release every version sealed at-or-before ``timestamp`` for
        compaction; returns the new low-watermark version."""
        version = self._arrangement.version_for(timestamp)
        if version > self.low_watermark:
            self.low_watermark = version
        return self.low_watermark

    def read_at(self, timestamp: int) -> Dict[Key, List[Row]]:
        """Snapshot read: key -> rows visible at watermark ``timestamp``."""
        self._check_attached()
        return self._arrangement.read_version(
            self._arrangement.version_for(timestamp))

    def read_frontier(self) -> Dict[Key, List[Row]]:
        """Snapshot read at the latest sealed version."""
        self._check_attached()
        return self._arrangement.read_version(self._arrangement.sealed)

    def read_frontier_rows(self) -> List[Tuple[Key, Row]]:
        """Flat ``(key, row)`` pairs at the frontier, in arrival order."""
        self._check_attached()
        return self._arrangement.read_rows(self._arrangement.sealed)

    def detach(self) -> None:
        if self.attached:
            self.attached = False
            self._arrangement._detach(self)

    def _check_attached(self) -> None:
        if not self.attached:
            raise RuntimeError("handle is detached from arrangement %r"
                               % self._arrangement.name)


class Arrangement:
    """One shard of a keyed multiversioned index."""

    def __init__(self, name: str, key_columns: Tuple[str, ...],
                 shard_index: int = 0, compaction_interval: int = 8) -> None:
        if compaction_interval < 1:
            raise ValueError("compaction_interval must be >= 1")
        self.name = name
        self.key_columns = tuple(key_columns)
        self.shard_index = shard_index
        self.compaction_interval = compaction_interval
        self._handles: List[ArrangementHandle] = []
        self._reset_data()
        # Reader accounting survives _reset_data (attach/detach history).
        self.readers_total = 0
        self.readers_peak = 0

    def _reset_data(self) -> None:
        #: compacted prefix: key -> [(seq, row)] for versions <= compacted_through
        self._base: Dict[Key, List[Tuple[int, Row]]] = {}
        #: sealed deltas: version -> key -> [(seq, row)]
        self._deltas: Dict[int, Dict[Key, List[Tuple[int, Row]]]] = {}
        #: rows inserted since the last seal (version ``sealed + 1``)
        self._open: Dict[Key, List[Tuple[int, Row]]] = {}
        #: (watermark, version) marks, ascending in both components
        self._marks: List[Tuple[int, int]] = []
        self._seq = 0
        self.sealed = 0
        self.compacted_through = 0
        self.compactions = 0
        self.rows = 0
        self._bytes = 0
        self.bytes_peak = 0

    # ------------------------------------------------------------------
    # Write path (the engine's arrange operator)

    def insert(self, key: Key, row: Row) -> None:
        self._seq += 1
        self._open.setdefault(key, []).append((self._seq, row))
        self.rows += 1
        self._bytes += sys.getsizeof(row)
        if self._bytes > self.bytes_peak:
            self.bytes_peak = self._bytes

    def seal(self, watermark: int) -> None:
        """Close the open version at ``watermark``, making it readable."""
        if self._marks and watermark <= self._marks[-1][0]:
            return  # watermark did not advance: nothing new to expose
        if self._open:
            self.sealed += 1
            self._deltas[self.sealed] = self._open
            self._open = {}
        self._marks.append((watermark, self.sealed))

    def seal_final(self) -> None:
        """Seal everything at the end-of-stream frontier."""
        self.seal(MAX_TIMESTAMP)

    # ------------------------------------------------------------------
    # Read path

    def version_for(self, timestamp: int) -> int:
        """The version visible at watermark ``timestamp``: the highest
        mark at-or-before it (0 == before any sealed data)."""
        version = 0
        for mark_ts, mark_version in self._marks:
            if mark_ts > timestamp:
                break
            version = mark_version
        return version

    def read_version(self, version: int) -> Dict[Key, List[Row]]:
        """key -> rows (arrival order) visible at ``version``."""
        grouped: Dict[Key, List[Row]] = {}
        for key, entries in self._iter_entries(version):
            grouped.setdefault(key, []).extend(row for _, row in entries)
        return grouped

    def read_rows(self, version: int) -> List[Tuple[Key, Row]]:
        """Flat ``(key, row)`` pairs at ``version`` in arrival order."""
        flat: List[Tuple[int, Key, Row]] = []
        for key, entries in self._iter_entries(version):
            flat.extend((seq, key, row) for seq, row in entries)
        flat.sort(key=lambda item: item[0])
        return [(key, row) for _, key, row in flat]

    def _iter_entries(
            self, version: int
    ) -> Iterable[Tuple[Key, List[Tuple[int, Row]]]]:
        if version < self.compacted_through:
            raise VersionCompactedError(
                "version %d of arrangement %r was compacted (base covers "
                "through %d)" % (version, self.name, self.compacted_through))
        version = min(version, self.sealed)
        for key, entries in self._base.items():
            yield key, entries
        for delta_version in sorted(self._deltas):
            if delta_version > version:
                break
            for key, entries in self._deltas[delta_version].items():
                yield key, entries

    # ------------------------------------------------------------------
    # Reader lifecycle

    def attach(self) -> ArrangementHandle:
        handle = ArrangementHandle(self)
        self._handles.append(handle)
        self.readers_total += 1
        if len(self._handles) > self.readers_peak:
            self.readers_peak = len(self._handles)
        return handle

    def _detach(self, handle: ArrangementHandle) -> None:
        try:
            self._handles.remove(handle)
        except ValueError:
            pass

    @property
    def readers(self) -> int:
        return len(self._handles)

    def reader_low_watermark(self) -> int:
        """The lowest version any attached reader may still re-read."""
        if not self._handles:
            return self.sealed
        return min(handle.low_watermark for handle in self._handles)

    # ------------------------------------------------------------------
    # Compaction

    def compact(self, up_to: Optional[int] = None) -> int:
        """Fold sealed versions at-or-below ``min(up_to, readers' low
        watermark)`` into the base; returns the new ``compacted_through``."""
        limit = self.sealed if up_to is None else min(up_to, self.sealed)
        limit = min(limit, self.reader_low_watermark())
        if limit <= self.compacted_through:
            return self.compacted_through
        folded = False
        for version in sorted(self._deltas):
            if version > limit:
                break
            for key, entries in self._deltas.pop(version).items():
                self._base.setdefault(key, []).extend(entries)
            folded = True
        self.compacted_through = limit
        # Marks resolving below the compaction point are unreadable now
        # (version_for returns 0 there, and reads below the frontier
        # raise VersionCompactedError) -- drop them to bound the list.
        self._marks = [(ts, v) for ts, v in self._marks if v >= limit]
        if folded:
            self.compactions += 1
        return self.compacted_through

    # ------------------------------------------------------------------
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        return {
            "base": {key: list(entries)
                     for key, entries in self._base.items()},
            "deltas": {version: {key: list(entries)
                                 for key, entries in delta.items()}
                       for version, delta in self._deltas.items()},
            "open": {key: list(entries)
                     for key, entries in self._open.items()},
            "marks": list(self._marks),
            "seq": self._seq,
            "sealed": self.sealed,
            "compacted_through": self.compacted_through,
            "compactions": self.compactions,
            "rows": self.rows,
            "bytes": self._bytes,
            "bytes_peak": self.bytes_peak,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._base = {key: list(entries)
                      for key, entries in state["base"].items()}
        self._deltas = {version: {key: list(entries)
                                  for key, entries in delta.items()}
                        for version, delta in state["deltas"].items()}
        self._open = {key: list(entries)
                      for key, entries in state["open"].items()}
        self._marks = [tuple(mark) for mark in state["marks"]]
        self._seq = state["seq"]
        self.sealed = state["sealed"]
        self.compacted_through = state["compacted_through"]
        self.compactions = state["compactions"]
        self.rows = state["rows"]
        self._bytes = state["bytes"]
        self.bytes_peak = state["bytes_peak"]
        # Surviving readers must not block compaction below the restored
        # frontier, nor claim versions the restored index never sealed.
        for handle in self._handles:
            handle.low_watermark = min(handle.low_watermark, self.sealed)
            handle.low_watermark = max(handle.low_watermark,
                                       self.compacted_through)

    def reset(self) -> None:
        """Full scratch reset (restart-from-scratch rebuilds the dataflow
        with fresh operators; stale handles must not linger)."""
        for handle in list(self._handles):
            handle.attached = False
        self._handles = []
        self._reset_data()

    # ------------------------------------------------------------------
    # Observability

    @property
    def version_count(self) -> int:
        return len(self._deltas) + (1 if self._open else 0)

    @property
    def compaction_lag(self) -> int:
        return self.sealed - self.compacted_through

    def stats(self) -> Dict[str, Any]:
        return {
            "arrangement": self.name,
            "key": ",".join(self.key_columns),
            "readers": self.readers,
            "readers_peak": self.readers_peak,
            "readers_total": self.readers_total,
            "versions": self.version_count,
            "sealed": self.sealed,
            "compacted_through": self.compacted_through,
            "compaction_lag": self.compaction_lag,
            "compactions": self.compactions,
            "rows": self.rows,
            "distinct_keys": (len(self._base) + sum(
                len(delta) for delta in self._deltas.values())
                + len(self._open)),
            "bytes": self._bytes,
            "bytes_peak": self.bytes_peak,
        }


class ShardedArrangement:
    """The engine-facing view: one :class:`Arrangement` per subtask.

    The object is created once at plan-build time and closed over by the
    arrange operator and every reader operator, so all of them -- across
    scratch restarts and (fork-inherited) multiprocess workers -- resolve
    the same shards.
    """

    def __init__(self, name: str, key_columns: Tuple[str, ...],
                 parallelism: int, compaction_interval: int = 8) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.name = name
        self.key_columns = tuple(key_columns)
        self.parallelism = parallelism
        self.shards = [Arrangement(name, key_columns, shard_index=index,
                                   compaction_interval=compaction_interval)
                       for index in range(parallelism)]

    def shard(self, index: int) -> Arrangement:
        return self.shards[index]

    def key_fn(self) -> Callable[[Row], Key]:
        columns = self.key_columns
        return lambda row: tuple(row[column] for column in columns)

    def stats(self) -> Dict[str, Any]:
        """Aggregate stats across shards (per-shard rows come from the
        arrange operator's ``arrangement_report``)."""
        merged: Dict[str, Any] = {
            "arrangement": self.name,
            "key": ",".join(self.key_columns),
            "shards": self.parallelism,
        }
        for field in ("readers", "readers_peak", "readers_total", "rows",
                      "distinct_keys", "bytes", "bytes_peak", "compactions"):
            merged[field] = sum(shard.stats()[field] for shard in self.shards)
        merged["versions"] = max(shard.version_count for shard in self.shards)
        merged["compaction_lag"] = max(shard.compaction_lag
                                       for shard in self.shards)
        return merged
