"""Time-travel restore: turn a durably persisted checkpoint into a
:class:`~repro.state.savepoint.Savepoint` without a live engine.

A :class:`~repro.state.durable.DurableCheckpointStore` outlives the
process that wrote it; :func:`savepoint_from_checkpoint` re-reads a
verified checkpoint from disk and repackages its per-vertex task
snapshots as per-operator savepoint state, so a *fresh* execution of the
same program can resume from any retained point in time::

    savepoint = savepoint_from_checkpoint("/ckpts", env)   # latest
    savepoint = savepoint_from_checkpoint("/ckpts", env, checkpoint_id=7)
    new_env.execute(from_savepoint=savepoint)

This is what makes hybrid history+stream jobs restartable across
process death: the :class:`~repro.connectors.sources.HybridSource`
offsets (which side of the cutover to replay, and from where) live in
the checkpointed operator state like any other source offsets.

The program handed in must be the *same* program (same operator names
and chaining) that wrote the checkpoint; vertex layout is recomputed
from its job graph to map chain positions back to operator names.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.state.durable import DurableCheckpointStore
from repro.state.savepoint import OperatorSnapshot, Savepoint


class TimeTravelError(Exception):
    """The requested checkpoint cannot be repackaged as a savepoint."""


def _resolve_job_graph(program):
    """Accept an Environment (preferred) or an already-built JobGraph."""
    build = getattr(program, "build_job_graph", None)
    if callable(build):
        return build()
    if hasattr(program, "vertices"):
        return program
    raise TimeTravelError(
        "program must be an Environment or a JobGraph; got %r"
        % type(program).__name__)


def savepoint_from_checkpoint(checkpoint_dir: str, program,
                              checkpoint_id: Optional[int] = None,
                              ) -> Savepoint:
    """Load a durable checkpoint from ``checkpoint_dir`` and repackage
    it as a :class:`Savepoint` for ``program``.

    ``checkpoint_id`` selects a specific retained checkpoint (see
    :meth:`DurableCheckpointStore.persisted_ids`); by default the latest
    verified one is used.  Raises :class:`TimeTravelError` when no
    verified checkpoint exists or the checkpoint does not cover the
    program's subtasks.
    """
    job_graph = _resolve_job_graph(program)
    store = DurableCheckpointStore(checkpoint_dir, fresh=False)
    if checkpoint_id is not None:
        completed = store.load_verified(checkpoint_id)
    else:
        completed = store.load_latest_verified()
        if completed is None:
            raise TimeTravelError(
                "no verified checkpoint in %r" % checkpoint_dir)

    all_names = [name for vertex in job_graph.vertices.values()
                 for name in vertex.names]
    duplicates = {name for name in all_names if all_names.count(name) > 1}
    if duplicates:
        raise TimeTravelError(
            "time-travel restore needs unique operator names; "
            "duplicated: %r (pass name=... to the fluent API)"
            % sorted(duplicates))

    operators: Dict[str, List[OperatorSnapshot]] = {}
    for vertex_id in sorted(job_graph.vertices):
        vertex = job_graph.vertices[vertex_id]
        for index in range(vertex.parallelism):
            subtask_id = ("%d-%s" % (vertex_id, vertex.name), index)
            snapshot = completed.snapshot_for(subtask_id)
            if snapshot is None:
                raise TimeTravelError(
                    "checkpoint %d lacks a snapshot for %r -- was it "
                    "written by a different program or parallelism?"
                    % (completed.checkpoint_id, subtask_id))
            for position, name in enumerate(vertex.names):
                key = str(position)
                operators.setdefault(name, []).append(OperatorSnapshot(
                    index,
                    snapshot.keyed_state.get(key, {}),
                    snapshot.operator_state.get(key),
                    snapshot.timers.get(key, {})))
    return Savepoint(operators, completed.checkpoint_id)
