"""Legacy setup shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("STREAMLINE reproduction: unified analysis of data at rest "
                 "and data in motion"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
