"""Tests for the streaming M4 operator and the interactive session."""

import math
import random

import pytest

from repro.api import StreamExecutionEnvironment
from repro.i2 import (
    InteractiveSession,
    StreamingM4Operator,
    naive_transfer_cost,
    pixel_error,
    render_line_chart,
)
from repro.time.watermarks import WatermarkStrategy


def series(n, t_max=1000, seed=4):
    rng = random.Random(seed)
    return [(t_max * i / max(n - 1, 1),
             50 * math.sin(i / 9.0) + rng.uniform(-5, 5))
            for i in range(n)]


class TestStreamingM4Operator:
    def _run(self, points, width=20, parallelism=1):
        env = StreamExecutionEnvironment(parallelism=parallelism)
        data = [(("sensor", value), int(ts)) for ts, value in points]
        keyed = (env.from_collection(data, timestamped=True)
                 .key_by(lambda kv: kv[0]))
        node = keyed._connect_keyed(
            "m4", lambda: StreamingM4Operator(0, 1000, width,
                                              value_fn=lambda v: v[1]))
        from repro.api.stream import DataStream
        result = DataStream(env, node).collect()
        env.execute()
        return result.get(), env

    def test_emits_bounded_updates(self):
        updates, _ = self._run(series(5000), width=20)
        total_tuples = sum(len(update.points) for update in updates)
        assert total_tuples <= 4 * 20
        assert all(update.series == "sensor" for update in updates)

    def test_client_render_matches_raw(self):
        points = series(2000)
        updates, _ = self._run(points, width=25)
        received = [p for update in updates for p in update.points]
        reference = render_line_chart(points, 25, 20, 0, 1000, -60, 60)
        rendered = render_line_chart(received, 25, 20, 0, 1000, -60, 60)
        assert pixel_error(rendered, reference) == 0

    def test_columns_emitted_once_each(self):
        updates, _ = self._run(series(3000), width=30)
        columns = [update.column for update in updates]
        assert len(columns) == len(set(columns))

    def test_watermarks_drive_incremental_emission(self):
        """With progressing watermarks, most columns are emitted before
        end-of-stream (live-chart behaviour)."""
        points = series(1000)
        env = StreamExecutionEnvironment()
        data = [("sensor", value, int(ts)) for ts, value in points]
        strategy = WatermarkStrategy.for_monotonic_timestamps(
            lambda v: v[2])
        keyed = (env.from_collection(data)
                 .assign_timestamps_and_watermarks(strategy)
                 .key_by(lambda v: v[0]))
        node = keyed._connect_keyed(
            "m4", lambda: StreamingM4Operator(0, 1000, 20,
                                              value_fn=lambda v: v[1]))
        from repro.api.stream import DataStream
        collected = DataStream(env, node).collect(with_timestamps=True)
        env.execute()
        emit_timestamps = [ts for _, ts in collected.get()]
        # Emissions are spread across event time, not all at the end.
        assert min(emit_timestamps) < 500

    def test_requires_timestamps(self):
        env = StreamExecutionEnvironment()
        keyed = env.from_collection([("s", 1.0)]).key_by(lambda v: v[0])
        node = keyed._connect_keyed(
            "m4", lambda: StreamingM4Operator(0, 1000, 20,
                                              value_fn=lambda v: v[1]))
        from repro.api.stream import DataStream
        DataStream(env, node).collect()
        with pytest.raises(ValueError):
            env.execute()

    def test_snapshot_restore_roundtrip(self):
        operator = StreamingM4Operator(0, 100, 10)

        class _Ctx:
            class metrics:
                @staticmethod
                def counter(name):
                    from repro.metrics import Counter
                    return Counter(name)
        operator.open(_Ctx())
        from repro.runtime.elements import Record
        operator.process(Record(5.0, 3, key="s"))
        operator.process(Record(9.0, 55, key="s"))
        snapshot = operator.snapshot_state()

        restored = StreamingM4Operator(0, 100, 10)
        restored.open(_Ctx())
        restored.restore_state(snapshot)
        assert restored._aggregators["s"].inserted == 2
        assert restored._aggregators["s"].column(0) is not None


class TestInteractiveSession:
    def _source(self, n=20000):
        data = series(n, seed=11)
        return lambda: iter(data)

    def test_deploy_transfers_bounded_tuples(self):
        session = InteractiveSession(self._source(), width=50, height=30,
                                     v_min=-60, v_max=60)
        interaction = session.deploy(0, 1000)
        assert interaction.tuples_transferred <= 4 * 50
        assert interaction.raw_tuples_in_range == 20000

    def test_zoom_redeploys_at_higher_resolution(self):
        session = InteractiveSession(self._source(), width=50, height=30,
                                     v_min=-60, v_max=60)
        session.deploy(0, 1000)
        zoomed = session.zoom(100, 200)
        assert zoomed.kind == "zoom"
        assert zoomed.tuples_transferred <= 4 * 50
        # Zooming in re-aggregates: ~1/10th of the raw data in range.
        assert zoomed.raw_tuples_in_range < 20000 / 5

    def test_pan_and_resize(self):
        session = InteractiveSession(self._source(), width=50, height=30,
                                     v_min=-60, v_max=60)
        session.deploy(0, 500)
        panned = session.pan(100)
        assert (panned.t_min, panned.t_max) == (100, 600)
        resized = session.resize(25)
        assert resized.width == 25
        assert resized.tuples_transferred <= 4 * 25

    def test_savings_factor_vs_naive_client(self):
        source = self._source()
        session = InteractiveSession(source, width=50, height=30,
                                     v_min=-60, v_max=60)
        session.deploy(0, 1000)
        session.zoom(0, 100)
        session.pan(50)
        naive_total = (naive_transfer_cost(source, 0, 1000)
                       + naive_transfer_cost(source, 0, 100)
                       + naive_transfer_cost(source, 50, 150))
        assert session.total_raw == naive_total
        assert session.savings_factor() > 10

    def test_rendered_chart_matches_raw_rendering(self):
        source = self._source(5000)
        session = InteractiveSession(source, width=40, height=30,
                                     v_min=-60, v_max=60)
        session.deploy(0, 1000)
        reference = render_line_chart([p for p in source()], 40, 30,
                                      0, 1000, -60, 60)
        assert pixel_error(session.chart.render(), reference) == 0

    def test_interaction_before_deploy_rejected(self):
        session = InteractiveSession(self._source(), width=10, height=10,
                                     v_min=0, v_max=1)
        with pytest.raises(RuntimeError):
            session.pan(10)
        with pytest.raises(RuntimeError):
            session.zoom(0, 10)
