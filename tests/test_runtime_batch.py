"""Direct unit tests for the blocking (batch) operators, including their
checkpoint snapshot/restore behaviour."""

import pytest

from repro.runtime.batch import (
    CountOperator,
    DistinctOperator,
    FoldAllOperator,
    GroupReduceOperator,
    HashJoinOperator,
    SortOperator,
)
from repro.runtime.elements import Record


class Harness:
    """Minimal operator driver: collects emissions."""

    def __init__(self, operator):
        self.operator = operator
        self.emitted = []
        operator.ctx = self
        # OperatorContext protocol subset used by batch operators:
        self.backend = type("B", (), {"current_key": None})()

    def emit(self, value, timestamp=None):
        self.emitted.append(value)

    def emit_record(self, record):
        self.emitted.append(record.value)

    def feed(self, values):
        for value in values:
            self.operator.process(Record(value))
        return self

    def feed2(self, values):
        for value in values:
            self.operator.process2(Record(value))
        return self

    def finish(self):
        self.operator.finish()
        return self.emitted


class TestGroupReduce:
    def test_one_result_per_key_at_finish(self):
        harness = Harness(GroupReduceOperator(
            key_selector=lambda v: v[0],
            reduce_fn=lambda key, values: (key, sum(v[1] for v in values))))
        harness.feed([("a", 1), ("b", 5), ("a", 2)])
        assert harness.operator.ctx.emitted == []
        results = harness.finish()
        assert sorted(results) == [("a", 3), ("b", 5)]

    def test_snapshot_restore_midway(self):
        operator = GroupReduceOperator(lambda v: v, lambda k, vs: (k, len(vs)))
        harness = Harness(operator)
        harness.feed(["x", "x", "y"])
        state = operator.snapshot_state()

        fresh = GroupReduceOperator(lambda v: v, lambda k, vs: (k, len(vs)))
        fresh_harness = Harness(fresh)
        fresh.restore_state(state)
        fresh_harness.feed(["x"])
        assert sorted(fresh_harness.finish()) == [("x", 3), ("y", 1)]

    def test_state_cleared_after_finish(self):
        operator = GroupReduceOperator(lambda v: v, lambda k, vs: k)
        harness = Harness(operator)
        harness.feed([1])
        harness.finish()
        assert operator.snapshot_state() == {}


class TestSortOperator:
    def test_sorts_at_finish(self):
        harness = Harness(SortOperator())
        harness.feed([3, 1, 2])
        assert harness.finish() == [1, 2, 3]

    def test_descending_with_key(self):
        harness = Harness(SortOperator(key_fn=len, descending=True))
        harness.feed(["aa", "a", "aaa"])
        assert harness.finish() == ["aaa", "aa", "a"]

    def test_snapshot_restore(self):
        operator = SortOperator()
        Harness(operator).feed([5, 1])
        state = operator.snapshot_state()
        fresh = SortOperator()
        harness = Harness(fresh)
        fresh.restore_state(state)
        harness.feed([3])
        assert harness.finish() == [1, 3, 5]


class TestDistinct:
    def test_first_seen_order(self):
        harness = Harness(DistinctOperator())
        harness.feed([3, 1, 3, 2, 1])
        assert harness.finish() == [3, 1, 2]

    def test_key_fn(self):
        harness = Harness(DistinctOperator(key_fn=lambda s: s[0]))
        harness.feed(["apple", "avocado", "pear"])
        assert harness.finish() == ["apple", "pear"]


class TestHashJoin:
    def test_joins_on_finish(self):
        operator = HashJoinOperator(left_key=lambda v: v[0],
                                    right_key=lambda v: v[0],
                                    join_fn=lambda l, r: (l[1], r[1]))
        harness = Harness(operator)
        harness.feed([("k", "L1"), ("j", "L2")])
        harness.feed2([("k", "R1"), ("k", "R2"), ("z", "R3")])
        assert sorted(harness.finish()) == [("L1", "R1"), ("L1", "R2")]

    def test_snapshot_restore(self):
        operator = HashJoinOperator(lambda v: v, lambda v: v)
        harness = Harness(operator)
        harness.feed(["a"])
        harness.feed2(["a"])
        state = operator.snapshot_state()
        fresh = HashJoinOperator(lambda v: v, lambda v: v)
        fresh_harness = Harness(fresh)
        fresh.restore_state(state)
        assert fresh_harness.finish() == [("a", "a")]

    def test_rescale_splits_both_sides_by_key_hash(self):
        operator = HashJoinOperator(lambda v: v, lambda v: v)
        states = [{"left": {"a": ["a"], "b": ["b"]},
                   "right": ["a", "b", "b"]}]
        merged = {}
        for index in range(2):
            part = operator.rescale_operator_state(states, index, 2)
            for key, values in part["left"].items():
                merged.setdefault("left", {})[key] = values
            merged.setdefault("right", []).extend(part["right"])
        assert merged["left"] == {"a": ["a"], "b": ["b"]}
        assert sorted(merged["right"]) == ["a", "b", "b"]


class TestCountAndFold:
    def test_count(self):
        harness = Harness(CountOperator())
        harness.feed(range(7))
        assert harness.finish() == [7]

    def test_fold_all(self):
        harness = Harness(FoldAllOperator(0, lambda acc, v: acc + v))
        harness.feed([1, 2, 3])
        assert harness.finish() == [6]

    def test_fold_snapshot_restore(self):
        operator = FoldAllOperator(0, lambda acc, v: acc + v)
        Harness(operator).feed([10])
        state = operator.snapshot_state()
        fresh = FoldAllOperator(0, lambda acc, v: acc + v)
        harness = Harness(fresh)
        fresh.restore_state(state)
        harness.feed([5])
        assert harness.finish() == [15]

    def test_fold_emits_initial_on_empty_input(self):
        harness = Harness(FoldAllOperator(42, lambda acc, v: acc))
        assert harness.finish() == [42]
