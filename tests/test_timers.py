"""Unit tests for timer queues and the timer service."""

from repro.time.timers import TimerQueue, TimerService
from repro.windowing.windows import TimeWindow


class TestTimerQueue:
    def test_pop_due_in_timestamp_order(self):
        queue = TimerQueue()
        queue.register(30, "a", None)
        queue.register(10, "b", None)
        queue.register(20, "c", None)
        due = queue.pop_due(25)
        assert [entry[0] for entry in due] == [10, 20]
        assert len(queue) == 1

    def test_duplicate_registration_is_noop(self):
        queue = TimerQueue()
        assert queue.register(10, "a", "w")
        assert not queue.register(10, "a", "w")
        assert len(queue) == 1

    def test_lazy_delete(self):
        queue = TimerQueue()
        queue.register(10, "a", None)
        assert queue.delete(10, "a", None)
        assert not queue.delete(10, "a", None)
        assert queue.pop_due(100) == []

    def test_heterogeneous_keys_and_namespaces(self):
        # Keys/namespaces of incomparable types must not break heap order.
        queue = TimerQueue()
        queue.register(10, ("a", 1), TimeWindow(0, 10))
        queue.register(10, "b", ("cleanup", TimeWindow(0, 10)))
        queue.register(10, 3, None)
        assert len(queue.pop_due(10)) == 3

    def test_peek_skips_deleted(self):
        queue = TimerQueue()
        queue.register(10, "a", None)
        queue.register(20, "b", None)
        queue.delete(10, "a", None)
        assert queue.peek_timestamp() == 20

    def test_peek_empty_sentinel(self):
        assert TimerQueue().peek_timestamp() == 2**62

    def test_snapshot_restore_roundtrip(self):
        queue = TimerQueue()
        queue.register(30, "a", "x")
        queue.register(10, "b", "y")
        snapshot = queue.snapshot()
        restored = TimerQueue()
        restored.restore(snapshot)
        assert [e[0] for e in restored.pop_due(100)] == [10, 30]

    def test_pop_due_returns_timers_registered_during_same_watermark(self):
        queue = TimerQueue()
        queue.register(10, "a", None)
        assert queue.pop_due(15) == [(10, "a", None)]
        # Re-registration after pop works (not deduped against history).
        assert queue.register(10, "a", None)


class TestTimerService:
    def test_event_and_processing_queues_are_independent(self):
        service = TimerService()
        service.register_event_time_timer(10, "k")
        service.register_processing_time_timer(20, "k")
        assert len(service.event_time) == 1
        assert len(service.processing_time) == 1

    def test_snapshot_restore(self):
        service = TimerService()
        service.register_event_time_timer(10, "k", "ns")
        service.register_processing_time_timer(5, "k2")
        state = service.snapshot()
        restored = TimerService()
        restored.restore(state)
        assert restored.event_time.pop_due(10) == [(10, "k", "ns")]
        assert restored.processing_time.pop_due(10) == [(5, "k2", None)]

    def test_delete_event_timer(self):
        service = TimerService()
        service.register_event_time_timer(10, "k", "ns")
        service.delete_event_time_timer(10, "k", "ns")
        assert service.event_time.pop_due(100) == []
