"""Unit tests for channel occupancy accounting.

The lifetime invariant under test is ``pushed == polled + cleared +
size``: every record that ever entered a channel is either consumed,
dropped with accounting (failure-recovery clears, chaos losses), or
still buffered.  ``job_report()`` throughput and occupancy figures rely
on the balance holding across restores.
"""

from repro.runtime.channels import Channel, element_weight
from repro.runtime.elements import (
    CheckpointBarrier,
    EndOfStream,
    Record,
    RecordBatch,
    Watermark,
)


def _balanced(channel):
    return channel.pushed == channel.polled + channel.cleared + channel.size


def test_element_weight():
    assert element_weight(Record(1)) == 1
    assert element_weight(RecordBatch([Record(1), Record(2)])) == 2
    assert element_weight(RecordBatch([])) == 0
    assert element_weight(Watermark(5)) == 1
    assert element_weight(CheckpointBarrier(1)) == 1
    assert element_weight(EndOfStream()) == 1


def test_push_poll_balance():
    channel = Channel("t")
    for i in range(4):
        channel.push(Record(i))
    channel.push(RecordBatch([Record(10), Record(11), Record(12)]))
    assert channel.pushed == 7 and channel.size == 7
    channel.poll()
    channel.poll()
    assert channel.polled == 2 and channel.size == 5
    assert _balanced(channel)


def test_clear_accounts_dropped_records():
    channel = Channel("t")
    for i in range(3):
        channel.push(Record(i))
    channel.push(RecordBatch([Record(3), Record(4)]))
    channel.poll()
    channel.clear()
    assert channel.size == 0 and channel.is_empty
    assert channel.cleared == 4  # 2 scalars + the 2-record batch
    assert _balanced(channel)
    # Cleared counts accumulate across repeated restore cycles.
    channel.push(Record(9))
    channel.clear()
    assert channel.cleared == 5
    assert _balanced(channel)


def test_clear_resets_barrier_block_and_eos():
    channel = Channel("t")
    channel.push(CheckpointBarrier(1))
    channel.blocked = True
    channel.finished = True
    channel.clear()
    assert not channel.blocked and not channel.finished
    assert channel.cleared == 1
    assert _balanced(channel)


def test_requeue_front_reverses_poll_accounting():
    channel = Channel("t")
    channel.push(RecordBatch([Record(i) for i in range(5)]))
    batch = channel.poll()
    assert channel.polled == 5
    channel.requeue_front(RecordBatch(batch.records[2:]))
    assert channel.polled == 2 and channel.size == 3
    assert _balanced(channel)


def test_counters_balance_after_crash_restore():
    """End to end: a crash-restored job clears in-flight channels; the
    lifetime counters must still balance on every channel afterwards."""
    from repro.api.environment import Environment
    from repro.runtime.engine import EngineConfig
    from repro.runtime.restart import FixedDelayRestart
    from repro.testing.oracles import make_crash_once_hook

    hook = make_crash_once_hook(min_checkpoints=1, at_round=8)
    env = Environment(parallelism=2, config=EngineConfig(
        checkpoint_interval_ms=3, elements_per_step=2,
        failure_hook=hook,
        restart_strategy=FixedDelayRestart(max_restarts=3, delay_ms=0)))
    collected = (env.from_collection(range(200))
                 .key_by(lambda v: v % 5)
                 .sum()
                 .collect())
    env.execute()
    assert hook.state["fired"], "crash never injected"
    assert collected.get(), "job produced no output"
    engine = env.last_engine
    assert engine.recoveries >= 1
    for task in engine.tasks:
        for channel, _ in task.inputs:
            assert _balanced(channel), (
                "channel %s unbalanced: pushed=%d polled=%d cleared=%d "
                "size=%d" % (channel.name, channel.pushed, channel.polled,
                             channel.cleared, channel.size))


def test_chaos_drop_and_duplicate_keep_balance():
    channel = Channel("t")
    channel.push(Record("a"))
    channel.push(RecordBatch([Record("b"), Record("c")]))
    assert channel.drop_one_record()
    assert channel.cleared == 1
    assert channel.duplicate_one_record()
    assert _balanced(channel)
    while channel.poll() is not None:
        pass
    assert _balanced(channel) and channel.size == 0
