"""Unit tests for the FlatFAT aggregate tree."""

import pytest

from repro.cutty.flatfat import FlatFAT
from repro.windowing.aggregates import MaxAggregate, SumAggregate


class TestAppendQuery:
    def test_query_matches_python_sum(self):
        tree = FlatFAT(SumAggregate(), 4)
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        for value in values:
            tree.append(value)
        for start in range(len(values)):
            for end in range(start, len(values) + 1):
                expected = sum(values[start:end]) if start < end else None
                assert tree.query(start, end) == expected

    def test_growth_preserves_contents(self):
        tree = FlatFAT(SumAggregate(), 2)
        for value in range(100):
            tree.append(value)
        assert tree.capacity >= 100
        assert tree.query(0, 100) == sum(range(100))
        assert tree.query(10, 20) == sum(range(10, 20))

    def test_append_returns_absolute_indices(self):
        tree = FlatFAT(SumAggregate(), 4)
        assert [tree.append(v) for v in (1, 2, 3)] == [0, 1, 2]

    def test_non_invertible_aggregate(self):
        tree = FlatFAT(MaxAggregate(), 4)
        for value in [5, 3, 9, 1]:
            tree.append(value)
        assert tree.query(0, 4) == 9
        assert tree.query(2, 4) == 9
        assert tree.query(3, 4) == 1


class TestEviction:
    def test_evicted_leaves_leave_the_aggregate(self):
        tree = FlatFAT(SumAggregate(), 4)
        for value in [10, 20, 30, 40]:
            tree.append(value)
        tree.evict_front(2)
        assert tree.size == 2
        assert tree.query_all() == 70
        assert tree.query(0, 4) == 70  # clamped to live range

    def test_ring_reuse_after_eviction(self):
        tree = FlatFAT(SumAggregate(), 4)
        for value in range(4):
            tree.append(value)
        tree.evict_front(2)
        tree.append(100)  # reuses a freed slot without growth
        tree.append(200)
        assert tree.capacity == 4
        assert tree.query_all() == 2 + 3 + 100 + 200

    def test_sliding_usage_pattern(self):
        # Continuous append+evict, like a sliding window of 8 slices.
        tree = FlatFAT(SumAggregate(), 4)
        for index in range(200):
            tree.append(index)
            if index >= 8:
                tree.evict_front(index - 7)
        assert tree.size == 8
        assert tree.query_all() == sum(range(192, 200))

    def test_evict_everything(self):
        tree = FlatFAT(SumAggregate(), 4)
        tree.append(1)
        tree.evict_front(1)
        assert tree.query_all() is None
        assert tree.size == 0


class TestBoundsAndErrors:
    def test_empty_range_is_none(self):
        tree = FlatFAT(SumAggregate(), 4)
        tree.append(1)
        assert tree.query(1, 1) is None
        assert tree.query(5, 9) is None

    def test_update_live_leaf(self):
        tree = FlatFAT(SumAggregate(), 4)
        tree.append(1)
        tree.append(2)
        tree.update(0, 10)
        assert tree.query_all() == 12
        assert tree.get(0) == 10

    def test_update_dead_leaf_raises(self):
        tree = FlatFAT(SumAggregate(), 4)
        tree.append(1)
        tree.evict_front(1)
        with pytest.raises(IndexError):
            tree.update(0, 5)
        with pytest.raises(IndexError):
            tree.get(0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlatFAT(SumAggregate(), 1)

    def test_wrap_around_query_order(self):
        """Ranges that wrap the physical ring combine left-to-right."""
        # Use a non-commutative "aggregate": string concatenation.
        class Concat(SumAggregate):
            def create_accumulator(self):
                return ""
        tree = FlatFAT(Concat(), 4)
        for ch in "abcd":
            tree.append(ch)
        tree.evict_front(2)      # live: c, d at slots 2, 3
        tree.append("e")         # slot 0
        tree.append("f")         # slot 1 -> range [2, 6) wraps
        assert tree.query(2, 6) == "cdef"
