"""Unit tests for the restart-strategy policies (pure, no engine)."""

import pytest

from repro.runtime.restart import (
    ExponentialBackoffRestart,
    FailureRateRestart,
    FixedDelayRestart,
    NoRestart,
)


class TestNoRestart:
    def test_always_gives_up(self):
        strategy = NoRestart()
        assert strategy.on_failure(0) is None
        assert strategy.on_failure(1000) is None


class TestFixedDelay:
    def test_grants_up_to_max_restarts(self):
        strategy = FixedDelayRestart(max_restarts=3, delay_ms=7)
        assert [strategy.on_failure(i) for i in range(4)] == [7, 7, 7, None]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FixedDelayRestart(max_restarts=0)
        with pytest.raises(ValueError):
            FixedDelayRestart(delay_ms=-1)


class TestExponentialBackoff:
    def test_delay_doubles_and_caps(self):
        strategy = ExponentialBackoffRestart(initial_delay_ms=10,
                                             max_delay_ms=50, multiplier=2.0)
        delays = [strategy.on_failure(0) for _ in range(5)]
        assert delays == [10, 20, 40, 50, 50]

    def test_unbounded_attempts_by_default(self):
        strategy = ExponentialBackoffRestart(initial_delay_ms=1,
                                             max_delay_ms=8)
        assert all(strategy.on_failure(0) is not None for _ in range(100))

    def test_bounded_attempts(self):
        strategy = ExponentialBackoffRestart(initial_delay_ms=1,
                                             max_delay_ms=8, max_restarts=2)
        assert strategy.on_failure(0) == 1
        assert strategy.on_failure(0) == 2
        assert strategy.on_failure(0) is None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ExponentialBackoffRestart(initial_delay_ms=10, max_delay_ms=5)
        with pytest.raises(ValueError):
            ExponentialBackoffRestart(multiplier=0.5)


class TestFailureRate:
    def test_tolerates_sparse_failures_forever(self):
        strategy = FailureRateRestart(max_failures_per_interval=2,
                                      interval_ms=100, delay_ms=3)
        # One failure every 200ms never clusters.
        assert all(strategy.on_failure(t) == 3
                   for t in range(0, 2000, 200))

    def test_gives_up_on_clustered_failures(self):
        strategy = FailureRateRestart(max_failures_per_interval=2,
                                      interval_ms=100, delay_ms=3)
        assert strategy.on_failure(10) == 3
        assert strategy.on_failure(20) == 3
        assert strategy.on_failure(30) is None  # 3 failures inside 100ms

    def test_window_slides(self):
        strategy = FailureRateRestart(max_failures_per_interval=2,
                                      interval_ms=100, delay_ms=3)
        assert strategy.on_failure(0) == 3
        assert strategy.on_failure(50) == 3
        # The first failure aged out of the window by t=150.
        assert strategy.on_failure(150) == 3

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FailureRateRestart(max_failures_per_interval=0)
        with pytest.raises(ValueError):
            FailureRateRestart(interval_ms=0)
