"""Unit tests for window-deterministic functions (specs)."""

import pytest

from repro.cutty.specs import (
    CountWindows,
    PeriodicWindows,
    PunctuationWindows,
    SessionWindows,
)


def kinds(events):
    return [event[0] for event in events]


class TestPeriodicWindows:
    def test_initial_element_registers_containing_windows(self):
        spec = PeriodicWindows(size=10, slide=5)
        events = spec.on_time(12)
        begins = [event for event in events if event[0] == "begin"]
        # Windows containing ts 12: starts 5 and 10.
        assert [b[1] for b in begins] == [5, 10]
        assert not [e for e in events if e[0] == "end"]

    def test_begin_and_end_ordering_at_equal_points(self):
        spec = PeriodicWindows(size=10, slide=10)  # tumbling
        spec.on_time(0)
        events = spec.on_time(10)
        # Begin of [10, 20) sorts before end of [0, 10) at point 10.
        assert kinds(events) == ["begin", "end"]
        assert events[1][3] == (0, 10)

    def test_ends_lag_begins_by_size(self):
        spec = PeriodicWindows(size=20, slide=5)
        spec.on_time(0)
        events = spec.on_time(23)
        ends = [event[3] for event in events if event[0] == "end"]
        # All windows containing the first element (ts 0) end by 23,
        # including the ones that started before the stream did.
        assert ends == [(-15, 5), (-10, 10), (-5, 15), (0, 20)]

    def test_flush_emits_tail_windows(self):
        spec = PeriodicWindows(size=10, slide=5)
        spec.on_time(0)
        spec.on_time(7)
        windows = [event[3] for event in spec.flush(7)]
        assert windows == [(0, 10), (5, 15)]

    def test_assign_enumerates_containing_windows(self):
        spec = PeriodicWindows(size=10, slide=5)
        assert spec.assign(12, 0) == [(10, 20), (5, 15)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicWindows(0)
        with pytest.raises(ValueError):
            PeriodicWindows(10, 20)

    def test_default_slide_is_tumbling(self):
        spec = PeriodicWindows(10)
        assert spec.slide == 10


class TestSessionWindows:
    def test_first_element_begins_session(self):
        spec = SessionWindows(gap=10)
        assert kinds(spec.on_time(100)) == ["begin"]
        spec.after_element(None, 100, 0)

    def test_gap_closes_and_reopens(self):
        spec = SessionWindows(gap=10)
        spec.on_time(100)
        spec.after_element(None, 100, 0)
        spec.on_time(105)
        spec.after_element(None, 105, 1)
        events = spec.on_time(200)
        assert kinds(events) == ["end", "begin"]
        assert events[0][3] == (100, 115)
        assert events[1][1] == 200

    def test_within_gap_no_events(self):
        spec = SessionWindows(gap=10)
        spec.on_time(100)
        spec.after_element(None, 100, 0)
        assert spec.on_time(109) == []

    def test_flush_closes_open_session(self):
        spec = SessionWindows(gap=10)
        spec.on_time(100)
        spec.after_element(None, 100, 0)
        events = spec.flush(100)
        assert [event[3] for event in events] == [(100, 110)]
        assert spec.flush(100) == []  # idempotent

    def test_flush_without_session(self):
        assert SessionWindows(gap=10).flush(0) == []


class TestCountWindows:
    def test_begin_every_slide_tuples(self):
        spec = CountWindows(size=4, slide=2)
        begins = []
        for seq in range(6):
            begins += spec.before_element(None, seq * 10, seq)
        assert [event[2] for event in begins] == [0, 2, 4]

    def test_end_after_size_tuples(self):
        spec = CountWindows(size=4, slide=2)
        ends = []
        for seq in range(8):
            ends += spec.after_element(None, seq * 10, seq)
        assert [event[3] for event in ends] == [(0, 4), (2, 6), (4, 8)]

    def test_tumbling_count(self):
        spec = CountWindows(size=3)
        ends = []
        for seq in range(9):
            ends += spec.after_element(None, seq, seq)
        assert [event[3] for event in ends] == [(0, 3), (3, 6), (6, 9)]

    def test_assign(self):
        spec = CountWindows(size=4, slide=2)
        assert spec.assign(0, 5) == [(4, 8), (2, 6)]

    def test_no_flush(self):
        spec = CountWindows(size=4, slide=2)
        spec.before_element(None, 0, 0)
        assert spec.flush(100) == []


class TestPunctuationWindows:
    def test_windows_split_at_punctuations(self):
        spec = PunctuationWindows(lambda v: v == "|")
        stream = ["a", "b", "|", "c", "|", "d"]
        events = []
        for seq, value in enumerate(stream):
            events += spec.before_element(value, seq * 10, seq)
            spec.after_element(value, seq * 10, seq)
        events += spec.flush(50)
        ends = [event[3] for event in events if event[0] == "end"]
        assert ends == [(0, 20), (20, 40), (40, 51)]

    def test_first_element_starts_window_even_if_not_punctuation(self):
        spec = PunctuationWindows(lambda v: False)
        events = spec.before_element("x", 5, 0)
        assert kinds(events) == ["begin"]
