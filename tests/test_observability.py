"""The observability layer: registry federation, span tracing, runtime
gauges, exposition formats, and the disabled-mode zero-overhead contract.
"""

import json

import pytest

from repro.api import Environment
from repro.observability import (
    FORMATS,
    JobReport,
    MetricsRegistry,
    MetricsReporter,
    ObservabilityConfig,
    TraceContext,
)
from repro.metrics import MetricGroup, merge_counter_maps
from repro.runtime.engine import EngineConfig
from repro.runtime.faults import SUBTASK_FAILURE, ChaosInjector, FaultEvent
from repro.runtime.restart import FixedDelayRestart
from repro.windowing import CountAggregate, TumblingEventTimeWindows


# -- span tracing ----------------------------------------------------------


class TestTraceContext:
    def test_stack_nesting_assigns_parents(self):
        clock = [0]
        tracer = TraceContext(lambda: clock[0])
        with tracer.span("outer") as outer:
            clock[0] = 5
            with tracer.span("inner") as inner:
                clock[0] = 7
        spans = {span.name: span for span in tracer.finished_spans()}
        assert spans["inner"].parent_id == outer.span_id
        assert spans["outer"].parent_id is None
        # Completion order: inner closes first.
        assert [s.name for s in tracer.finished_spans()] == ["inner", "outer"]
        assert spans["inner"].duration_ms == 2
        assert spans["outer"].duration_ms == 7

    def test_background_span_does_not_adopt_children(self):
        tracer = TraceContext(lambda: 0)
        checkpoint = tracer.open_span("checkpoint", id=1)
        with tracer.span("window_fire"):
            pass
        tracer.close_span(checkpoint, outcome="completed")
        spans = {span.name: span for span in tracer.finished_spans()}
        # The fire ran while the checkpoint was in flight but is NOT its
        # child: background spans do not join the stack.
        assert spans["window_fire"].parent_id is None
        assert spans["checkpoint"].attrs["outcome"] == "completed"

    def test_ring_buffer_wraps_and_counts_drops(self):
        tracer = TraceContext(lambda: 0, capacity=4)
        for index in range(10):
            tracer.event("e%d" % index)
        retained = [span.name for span in tracer.finished_spans()]
        assert len(retained) == 4
        assert retained == ["e6", "e7", "e8", "e9"]  # newest win, in order
        assert tracer.dropped == 6
        assert tracer.started == 10

    def test_exception_is_recorded_on_span(self):
        tracer = TraceContext(lambda: 0)
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (span,) = tracer.finished_spans()
        assert "boom" in span.attrs["error"]

    def test_export_json_round_trips(self):
        tracer = TraceContext(lambda: 3)
        tracer.event("restart", attempt=1)
        payload = json.loads(tracer.export_json())
        assert payload["started"] == 1
        assert payload["spans"][0]["name"] == "restart"
        assert payload["spans"][0]["attrs"] == {"attempt": 1}


# -- registry --------------------------------------------------------------


class TestMetricsRegistry:
    def test_providers_follow_live_groups(self):
        registry = MetricsRegistry()
        live = [MetricGroup("task.0")]
        live[0].counter("records_in").inc(5)
        registry.register_provider(lambda: live)
        assert registry.counters()["records_in"] == 5
        # A "restart" rebuilds the group; the registry must follow.
        live[0] = MetricGroup("task.0")
        live[0].counter("records_in").inc(2)
        assert registry.counters()["records_in"] == 2

    def test_counters_merge_across_groups(self):
        registry = MetricsRegistry()
        a, b = MetricGroup("a"), MetricGroup("b")
        a.counter("hits").inc(1)
        b.counter("hits").inc(2)
        registry.register_group(a)
        registry.register_group(b)
        assert registry.counters()["hits"] == 3
        assert registry.scoped_counters() == {"a": {"hits": 1},
                                              "b": {"hits": 2}}

    def test_probes_pull_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"calls": 0}

        def probe():
            state["calls"] += 1
            return {"calls": state["calls"]}

        registry.register_probe("p", probe)
        assert state["calls"] == 0  # registration does not evaluate
        assert registry.probe_results() == {"p": {"calls": 1}}
        assert registry.snapshot()["probes"] == {"p": {"calls": 2}}


# -- config ----------------------------------------------------------------


class TestObservabilityConfig:
    def test_normalize_semantics(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBSERVABILITY", raising=False)
        assert ObservabilityConfig.normalize(None) is None
        assert ObservabilityConfig.normalize(False) is None
        assert isinstance(ObservabilityConfig.normalize(True),
                          ObservabilityConfig)
        cfg = ObservabilityConfig(tracing=False)
        assert ObservabilityConfig.normalize(cfg) is cfg
        with pytest.raises(TypeError):
            ObservabilityConfig.normalize("yes")

    def test_env_var_enables_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVABILITY", "1")
        assert isinstance(ObservabilityConfig.normalize(None),
                          ObservabilityConfig)
        # Explicit False still wins over the environment.
        assert ObservabilityConfig.normalize(False) is None
        monkeypatch.setenv("REPRO_OBSERVABILITY", "0")
        assert ObservabilityConfig.normalize(None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservabilityConfig(trace_buffer=0)
        with pytest.raises(ValueError):
            ObservabilityConfig(sample_interval_rounds=0)


class TestEngineConfigSurface:
    def test_unknown_kwarg_suggests_closest(self):
        with pytest.raises(TypeError) as exc:
            EngineConfig(chanel_capacity=4)
        assert "chanel_capacity" in str(exc.value)
        assert "channel_capacity" in str(exc.value)

    def test_options_are_keyword_only(self):
        with pytest.raises(TypeError):
            EngineConfig(128)


# -- engine integration ----------------------------------------------------


def _windowed_env(observability, **engine_opts):
    events = [(k, ts) for ts in range(0, 2000, 10) for k in ("a", "b")]
    env = Environment(config=EngineConfig(observability=observability,
                                          **engine_opts))
    out = (env.from_collection(events, timestamped=True)
           .key_by(lambda v: v[0])
           .window(TumblingEventTimeWindows.of(500))
           .aggregate(CountAggregate())
           .collect())
    return env, out


class TestEngineIntegration:
    def test_disabled_mode_attaches_nothing(self):
        env, out = _windowed_env(observability=False)
        env.execute()
        engine = env.last_engine
        assert engine.observability is None
        for task in engine.tasks:
            assert task._tracer is None
            for chained in task.chain:
                assert chained.ctx.tracer is None
        assert out.get()  # the pipeline itself ran

    def test_disabled_report_still_has_counters(self):
        env, _ = _windowed_env(observability=False)
        env.execute()
        report = env.job_report()
        assert report["job"]["observability"] is False
        assert sum(op["records_in"] for op in report["operators"]) > 0
        assert "watermarks" not in report.as_dict()
        assert "spans" not in report.as_dict()

    def test_window_fire_spans_and_watermark_gauges(self):
        env, out = _windowed_env(observability=True)
        env.execute()
        engine = env.last_engine
        tracer = engine.observability.tracer
        fires = tracer.spans_by_name().get("window_fire", 0)
        assert fires == len(out.get())
        lag = engine.observability.registry.gauge("watermark_lag_ms")
        assert lag.max_value >= 0

    def test_fused_batch_spans_in_batched_mode(self):
        env = Environment(config=EngineConfig(observability=True,
                                              batch_size=64))
        out = (env.from_collection(range(1000))
               .rebalance()
               .map(lambda x: x + 1)
               .filter(lambda x: x % 2 == 0)
               .collect())
        env.execute()
        tracer = env.last_engine.observability.tracer
        assert tracer.spans_by_name().get("fused_batch", 0) > 0
        assert len(out.get()) == 500

    def test_backpressure_stall_accrues(self):
        # Two upstream subtasks funnel into one sink whose per-round
        # budget is half the inflow: the channels to it must fill and
        # the upstreams must be observed stalled.
        env = Environment(parallelism=2,
                          config=EngineConfig(observability=True,
                                              channel_capacity=4,
                                              elements_per_step=4))
        out = (env.from_collection(range(1000))
               .map(lambda x: x)
               .global_()
               .collect())
        env.execute()
        assert out.get()
        stalls = env.last_engine.observability.stall_ms
        assert sum(stalls.values()) > 0
        report = env.job_report()
        assert sum(op["backpressure_stall_ms"]
                   for op in report["operators"]) > 0

    def test_checkpoint_spans_carry_duration_and_size(self):
        env, out = _windowed_env(observability=True,
                                 checkpoint_interval_ms=5,
                                 elements_per_step=4)
        env.execute()
        engine = env.last_engine
        assert engine._checkpoints_completed > 0
        checkpoint_spans = [
            span for span in engine.observability.tracer.finished_spans()
            if span.name == "checkpoint"
            and span.attrs.get("outcome") == "completed"]
        assert len(checkpoint_spans) == engine._checkpoints_completed
        for span in checkpoint_spans:
            assert span.attrs["state_entries"] >= 0
            assert span.duration_ms >= 0

    def test_counters_survive_supervised_restart(self):
        """After a restart-from-scratch the registry must read the
        *rebuilt* tasks' groups (providers), and the restart must be
        visible as an event and a coordinator counter."""
        chaos = ChaosInjector([FaultEvent(5, SUBTASK_FAILURE)])
        env = Environment(config=EngineConfig(
            observability=True, chaos=chaos,
            restart_strategy=FixedDelayRestart(max_restarts=3, delay_ms=5)))
        env.from_collection(range(500)).rebalance() \
           .map(lambda x: x * 2).collect()
        env.execute()
        engine = env.last_engine
        assert engine.restarts == 1
        registry = engine.observability.registry
        # The registry reads the live (rebuilt) task groups: the merged
        # records_in equals what the post-restart tasks actually counted.
        expected = merge_counter_maps(
            [task.metrics.counters() for task in engine.tasks]
            + [engine.metrics.counters()])
        assert registry.counters()["records_in"] == expected["records_in"]
        assert registry.counters()["restarts"] == 1
        events = engine.observability.tracer.spans_by_name()
        assert events.get("restart") == 1

    def test_cutty_sharing_stats_in_report(self):
        from repro.cutty import PeriodicWindows
        from repro.windowing import SumAggregate
        events = [(1, ts) for ts in range(3000)]
        env = Environment(config=EngineConfig(observability=True))
        keyed = (env.from_collection(events, timestamped=True)
                 .key_by(lambda v: 0))
        out = keyed.shared_windows(
            SumAggregate,
            {"q1": lambda: PeriodicWindows(1000),
             "q2": lambda: PeriodicWindows(500)}).collect()
        env.execute()
        report = env.job_report()
        cutty = report["cutty"]["cutty-window"]
        assert cutty["keys"] == 1
        assert cutty["elements"] == len(events)
        per_query = cutty["queries"]
        emitted = {r.query_id for r in out.get()}
        assert emitted == {"q1", "q2"}
        assert per_query["q1"]["results"] > 0
        assert per_query["q2"]["results"] > per_query["q1"]["results"]
        assert per_query["q2"]["combines"] >= 0
        assert (per_query["q1"]["results"] + per_query["q2"]["results"]
                == len(out.get()))


# -- reporter --------------------------------------------------------------


def _full_report():
    """An e5-shaped job (windows + checkpoints) with observability on."""
    env, _ = _windowed_env(observability=True, checkpoint_interval_ms=5,
                           elements_per_step=4)
    env.execute()
    return env.job_report()


class TestReporter:
    def test_all_three_formats_render(self):
        report = _full_report()
        for fmt in FORMATS:
            rendered = report.render(fmt)
            assert rendered.strip()

    def test_text_sections(self):
        text = _full_report().to_text()
        for heading in ("== job ==", "== operators ==", "== checkpoints ==",
                        "== watermarks ==", "== spans ==", "== channels =="):
            assert heading in text
        assert "wm lag ms" in text
        assert "bp stall ms" in text

    def test_json_is_loadable_and_complete(self):
        payload = json.loads(_full_report().to_json())
        assert payload["job"]["observability"] is True
        assert payload["checkpoints"]["completed"] > 0
        ops = {op["operator"]: op for op in payload["operators"]}
        assert any("throughput_rps" in op for op in ops.values())

    def test_prometheus_exposition_shape(self):
        lines = _full_report().to_prometheus().splitlines()
        body = [line for line in lines if not line.startswith("#")]
        for line in body:
            name = line.split("{")[0].split(" ")[0]
            assert name.startswith("repro_")
            # Values must be numeric (no raw Python bools/strings).
            value = line.rsplit(" ", 1)[1]
            float(value)
        joined = "\n".join(lines)
        assert "repro_operator_records_in_total" in joined
        assert "repro_checkpoint_completed" in joined
        assert "# TYPE repro_operator_records_in_total counter" in joined

    def test_unknown_format_rejected(self):
        report = JobReport({"job": {}})
        with pytest.raises(ValueError):
            MetricsReporter(report).render("xml")

    def test_report_requires_execution(self):
        env = Environment()
        env.from_collection([1]).collect()
        with pytest.raises(RuntimeError):
            env.job_report()
