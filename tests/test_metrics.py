"""Unit tests for the metric primitives."""

import pytest

from repro.metrics import (
    AggregationCostCounter,
    Counter,
    Gauge,
    Histogram,
    MetricGroup,
    ThroughputTracker,
    merge_counter_maps,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_value == 5

    def test_inc_dec(self):
        gauge = Gauge("g")
        gauge.inc(10)
        gauge.dec(3)
        assert gauge.value == 7
        assert gauge.max_value == 10


class TestHistogram:
    def test_basic_statistics(self):
        histogram = Histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1.0
        assert histogram.max == 4.0

    def test_quantiles_on_small_sample(self):
        histogram = Histogram("h")
        for value in range(101):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.0, abs=1)

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_reservoir_caps_memory(self):
        histogram = Histogram("h", reservoir_size=10)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._values) == 10

    def test_empty_histogram_is_safe(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0


class TestMetricGroup:
    def test_metrics_are_cached_by_name(self):
        group = MetricGroup("task")
        assert group.counter("records") is group.counter("records")
        assert group.gauge("size") is group.gauge("size")

    def test_scope_qualifies_names(self):
        group = MetricGroup("op.0")
        assert group.counter("records").name == "op.0.records"

    def test_counters_snapshot(self):
        group = MetricGroup()
        group.counter("a").inc(2)
        group.counter("b").inc(3)
        assert group.counters() == {"a": 2, "b": 3}

    def test_reset_clears_everything(self):
        group = MetricGroup()
        group.counter("a").inc(2)
        group.gauge("g").set(7)
        group.reset()
        assert group.counters() == {"a": 0}
        assert group.gauges() == {"g": 0}


class TestAggregationCostCounter:
    def test_operations_per_record(self):
        costs = AggregationCostCounter()
        costs.records.inc(10)
        costs.lifts.inc(10)
        costs.combines.inc(20)
        costs.lowers.inc(5)
        assert costs.total_operations == 35
        assert costs.operations_per_record() == pytest.approx(3.5)

    def test_zero_records_is_safe(self):
        assert AggregationCostCounter().operations_per_record() == 0.0

    def test_snapshot_shape(self):
        costs = AggregationCostCounter()
        costs.records.inc()
        costs.lifts.inc()
        snapshot = costs.snapshot()
        assert snapshot["records"] == 1
        assert snapshot["ops_per_record"] == 1.0
        assert "max_live_partials" in snapshot

    def test_partials_high_water_mark(self):
        costs = AggregationCostCounter()
        costs.partials.inc(5)
        costs.partials.dec(3)
        assert costs.max_live_partials == 5


class TestThroughputTracker:
    def test_records_per_second(self):
        tracker = ThroughputTracker()
        tracker.start(0.0)
        tracker.record(500)
        tracker.stop(2.0)
        assert tracker.records_per_second() == pytest.approx(250.0)

    def test_unstarted_tracker_reports_zero(self):
        tracker = ThroughputTracker()
        tracker.record(10)
        assert tracker.records_per_second() == 0.0


def test_merge_counter_maps():
    merged = merge_counter_maps([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
    assert merged == {"a": 4, "b": 2, "c": 4}
