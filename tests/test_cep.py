"""Tests for the CEP package: pattern builder, NFA semantics, operator."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.cep import NFA, CEPOperator, Pattern


def event(kind, value=0):
    return {"kind": kind, "value": value}


def kinds(pattern_events):
    return {name: e["kind"] for name, e in pattern_events.items()}


class TestPatternBuilder:
    def test_builder_accumulates_stages(self):
        pattern = (Pattern.begin("a", lambda e: True)
                   .followed_by("b", lambda e: True)
                   .next("c", lambda e: True)
                   .within(100))
        assert pattern.length == 3
        assert pattern.within_ms == 100
        assert [s.contiguity for s in pattern.stages] == [
            "followed_by", "followed_by", "next"]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Pattern.begin("a", lambda e: True).followed_by("a",
                                                           lambda e: True)

    def test_invalid_within(self):
        with pytest.raises(ValueError):
            Pattern.begin("a", lambda e: True).within(0)

    def test_patterns_are_immutable_builders(self):
        base = Pattern.begin("a", lambda e: True)
        extended = base.followed_by("b", lambda e: True)
        assert base.length == 1
        assert extended.length == 2


class TestNFASemantics:
    def _ab_pattern(self, within=None):
        pattern = (Pattern.begin("a", lambda e: e["kind"] == "A")
                   .followed_by("b", lambda e: e["kind"] == "B"))
        return pattern.within(within) if within else pattern

    def test_simple_sequence(self):
        nfa = NFA(self._ab_pattern())
        assert nfa.advance(event("A"), 0) == []
        matches = nfa.advance(event("B"), 10)
        assert len(matches) == 1
        assert kinds(matches[0].events) == {"a": "A", "b": "B"}
        assert (matches[0].start_ts, matches[0].end_ts) == (0, 10)

    def test_relaxed_contiguity_skips_noise(self):
        nfa = NFA(self._ab_pattern())
        nfa.advance(event("A"), 0)
        nfa.advance(event("X"), 5)
        assert len(nfa.advance(event("B"), 10)) == 1

    def test_strict_contiguity_dies_on_noise(self):
        pattern = (Pattern.begin("a", lambda e: e["kind"] == "A")
                   .next("b", lambda e: e["kind"] == "B"))
        nfa = NFA(pattern)
        nfa.advance(event("A"), 0)
        nfa.advance(event("X"), 5)   # kills the partial
        assert nfa.advance(event("B"), 10) == []

    def test_within_expires_partials(self):
        nfa = NFA(self._ab_pattern(within=50))
        nfa.advance(event("A"), 0)
        assert nfa.advance(event("B"), 100) == []  # too late

    def test_overlapping_matches_all_found(self):
        nfa = NFA(self._ab_pattern())
        nfa.advance(event("A", 1), 0)
        nfa.advance(event("A", 2), 10)
        matches = nfa.advance(event("B"), 20)
        assert len(matches) == 2
        starts = sorted(m.start_ts for m in matches)
        assert starts == [0, 10]

    def test_relaxed_branch_allows_repeated_completion(self):
        # a followed_by b: after a B completes a match, the original A
        # can still pair with a later B (no after-match skipping).
        nfa = NFA(self._ab_pattern())
        nfa.advance(event("A"), 0)
        assert len(nfa.advance(event("B"), 10)) == 1
        assert len(nfa.advance(event("B"), 20)) == 1

    def test_single_stage_pattern_matches_immediately(self):
        pattern = Pattern.begin("only", lambda e: e["kind"] == "Z")
        nfa = NFA(pattern)
        matches = nfa.advance(event("Z"), 7)
        assert len(matches) == 1
        assert matches[0].start_ts == matches[0].end_ts == 7

    def test_three_stage_chain_with_captures(self):
        pattern = (Pattern.begin("low", lambda e: e["value"] < 10)
                   .followed_by("mid", lambda e: 10 <= e["value"] < 100)
                   .followed_by("high", lambda e: e["value"] >= 100))
        nfa = NFA(pattern)
        nfa.advance(event("t", 5), 0)
        nfa.advance(event("t", 50), 1)
        matches = nfa.advance(event("t", 500), 2)
        assert len(matches) == 1
        captured = matches[0].events
        assert (captured["low"]["value"], captured["mid"]["value"],
                captured["high"]["value"]) == (5, 50, 500)

    def test_prune_discards_expired_partials(self):
        nfa = NFA(self._ab_pattern(within=50))
        nfa.advance(event("A"), 0)
        nfa.advance(event("A"), 100)
        nfa.prune(watermark_ts=90)
        assert nfa.live_partial_matches == 1

    def test_snapshot_restore(self):
        nfa = NFA(self._ab_pattern())
        nfa.advance(event("A"), 0)
        state = nfa.snapshot()
        restored = NFA(self._ab_pattern())
        restored.restore(state)
        assert len(restored.advance(event("B"), 5)) == 1


class TestCEPPipeline:
    def test_detect_on_keyed_stream(self):
        # Churn-risk pattern: a purchase followed by two support
        # contacts within 1 minute, per user.
        events = [
            ("u1", "purchase", 0),
            ("u1", "support", 10_000),
            ("u2", "purchase", 15_000),
            ("u1", "support", 20_000),     # match for u1
            ("u2", "view", 21_000),
            ("u2", "support", 30_000),
            ("u2", "support", 200_000),    # too late: within 60s fails
        ]
        pattern = (Pattern.begin("buy", lambda e: e[1] == "purchase")
                   .followed_by("s1", lambda e: e[1] == "support")
                   .followed_by("s2", lambda e: e[1] == "support")
                   .within(60_000))
        env = StreamExecutionEnvironment()
        matches = (env.from_collection([(e, e[2]) for e in events],
                                       timestamped=True)
                   .key_by(lambda e: e[0])
                   .detect(pattern)
                   .collect())
        env.execute()
        found = matches.get()
        assert len(found) == 1
        assert found[0].key == "u1"
        assert found[0].events["s2"][2] == 20_000

    def test_requires_timestamps(self):
        env = StreamExecutionEnvironment()
        pattern = Pattern.begin("any", lambda e: True)
        (env.from_collection(["x"])
            .key_by(lambda e: e)
            .detect(pattern)
            .collect())
        with pytest.raises(ValueError):
            env.execute()

    def test_watermark_pruning_bounds_state(self):
        # Many pattern starts that never complete: watermarks must prune.
        events = [("k", "open", ts) for ts in range(0, 100_000, 100)]
        pattern = (Pattern.begin("open", lambda e: e[1] == "open")
                   .followed_by("close", lambda e: e[1] == "close")
                   .within(1_000))
        from repro.time.watermarks import WatermarkStrategy
        env = StreamExecutionEnvironment()
        strategy = WatermarkStrategy.for_monotonic_timestamps(
            lambda e: e[2])
        (env.from_collection(events)
            .assign_timestamps_and_watermarks(strategy)
            .key_by(lambda e: e[0])
            .detect(pattern)
            .collect())
        env.execute()
        engine = env.last_engine
        max_partials = max(
            chained.ctx.metrics.gauge("cep_partial_matches").max_value
            for task in engine.tasks
            for chained in task.chain
            if "cep" in getattr(chained.operator, "name", ""))
        # Without pruning this would reach ~1000; with it, ~within/gap.
        assert max_partials < 50
