"""Unit tests for the worker health watchdog (fake clock).

The watchdog is pure policy over caller-supplied clock readings, so every
transition -- RUNNING -> SUSPECTED -> FAILED, heartbeat rescues,
barrier-escalation declarations, fleet respawns -- is driven here with
explicit timestamps and no processes.
"""

import pytest

from repro.runtime.watchdog import (
    DONE,
    FAILED,
    RESTARTING,
    RUNNING,
    SUSPECTED,
    WorkerWatchdog,
)


def make(suspect=100, fail=300, workers=2):
    return WorkerWatchdog(range(workers), suspect, fail, now_ms=0)


class TestDeadlines:
    def test_starts_running(self):
        dog = make()
        assert dog.state_of(0) == RUNNING
        assert dog.state_of(1) == RUNNING
        assert dog.evaluate(50) == []

    def test_quiet_worker_becomes_suspected_then_failed(self):
        dog = make(suspect=100, fail=300)
        dog.heartbeat(1, 90)  # worker 1 stays chatty
        events = dog.evaluate(150)
        assert [(e.worker_id, e.state) for e in events] == [(0, SUSPECTED)]
        assert dog.is_suspected(0)
        assert dog.state_of(1) == RUNNING

        dog.heartbeat(1, 250)
        events = dog.evaluate(301)
        assert [(e.worker_id, e.state) for e in events] == [(0, FAILED)]
        assert dog.failed_workers() == [0]
        assert "no heartbeat" in dog.failure_reason(0)

    def test_one_evaluate_can_suspect_and_fail(self):
        """A worker quiet past *both* deadlines fails in a single
        evaluation -- the coordinator must not need two ticks."""
        dog = make(suspect=100, fail=300)
        dog.heartbeat(1, 350)
        events = dog.evaluate(400)
        assert [(e.worker_id, e.state) for e in events] == [
            (0, SUSPECTED), (0, FAILED)]

    def test_heartbeat_rescues_suspected_worker(self):
        dog = make(suspect=100, fail=300)
        dog.evaluate(150)
        assert dog.is_suspected(0)
        assert dog.heartbeat(0, 160) is True  # the rescue
        assert dog.state_of(0) == RUNNING
        assert dog.recoveries == 1
        # Deadline clock restarted from the heartbeat.
        assert dog.evaluate(250) == []
        assert dog.evaluate(261) != []

    def test_heartbeat_while_running_is_not_a_recovery(self):
        dog = make()
        assert dog.heartbeat(0, 10) is False
        assert dog.recoveries == 0
        assert dog.heartbeats_received == 1

    def test_never_heartbeating_worker_fails_from_attempt_start(self):
        """Deadlines are measured from attempt start, so a worker
        SIGSTOP'd before its first heartbeat still gets caught."""
        dog = make(suspect=100, fail=300)
        dog.evaluate(301)
        assert dog.failed_workers() == [0, 1]

    def test_fail_must_be_at_least_suspect(self):
        with pytest.raises(ValueError, match="fail_after_ms"):
            WorkerWatchdog(range(2), 300, 100)

    def test_disabled_deadlines_never_fire(self):
        dog = WorkerWatchdog(range(2), None, None, now_ms=0)
        assert dog.evaluate(10 ** 9) == []


class TestDeclarations:
    def test_done_worker_is_deadline_exempt(self):
        dog = make(suspect=100, fail=300)
        dog.mark_done(0)
        events = dog.evaluate(1000)
        assert {e.worker_id for e in events} == {1}
        assert dog.state_of(0) == DONE
        assert dog.failed_workers() == [1]

    def test_mark_failed_skips_the_ladder(self):
        dog = make()
        dog.mark_failed(1, "control pipe EOF")
        assert dog.failed_workers() == [1]
        assert dog.failure_reason(1) == "control pipe EOF"
        assert dog.failures_declared == 1

    def test_mark_failed_is_idempotent_and_keeps_first_reason(self):
        dog = make()
        dog.mark_failed(0, "first")
        dog.mark_failed(0, "second")
        assert dog.failures_declared == 1
        assert dog.failure_reason(0) == "first"

    def test_failed_worker_stays_failed(self):
        dog = make(suspect=100, fail=300)
        dog.evaluate(301)
        assert dog.failed_workers() == [0, 1]
        dog.heartbeat(0, 400)  # a zombie flush; must not un-fail
        assert dog.state_of(0) == FAILED


class TestFleetLifecycle:
    def test_restart_resets_states_and_counts_fleets(self):
        dog = make(suspect=100, fail=300)
        dog.evaluate(301)
        dog.mark_fleet_restarting()
        assert dog.state_of(0) == RESTARTING
        dog.begin_attempt(range(2), 500)
        assert dog.fleet_restarts == 1
        assert dog.state_of(0) == RUNNING
        # Deadlines re-anchor at the new attempt's start.
        assert dog.evaluate(550) == []
        dog.evaluate(801)
        assert dog.failed_workers() == [0, 1]

    def test_lifetime_counters_survive_restarts(self):
        dog = make(suspect=100, fail=300)
        dog.evaluate(150)  # suspicion for both
        dog.begin_attempt(range(2), 200)
        snap = dog.snapshot()
        assert snap["suspicions"] == 2
        assert snap["fleet_restarts"] == 1

    def test_snapshot_shape(self):
        dog = make()
        dog.heartbeat(0, 10)
        snap = dog.snapshot()
        assert snap["workers"][0] == {"state": RUNNING, "heartbeats": 1}
        assert snap["heartbeats_received"] == 1
        assert snap["failures_declared"] == 0
