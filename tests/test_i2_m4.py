"""Tests for M4: correctness (pixel-exact), minimality, rate independence."""

import math
import random

import pytest

from repro.i2.m4 import ColumnAggregate, M4Aggregator
from repro.i2.raster import pixel_error, render_line_chart
from repro.i2.reduction import (
    MinMaxReducer,
    NthSampler,
    PiecewiseAverage,
    RandomSampler,
    RawTransfer,
)

WIDTH, HEIGHT = 40, 30
T_MIN, T_MAX = 0, 1000
V_MIN, V_MAX = -100, 100


def wavy_series(n, seed=5):
    rng = random.Random(seed)
    points = []
    for i in range(n):
        ts = T_MIN + (T_MAX - T_MIN) * i / max(n - 1, 1)
        value = (60 * math.sin(i / 7.0) + 30 * math.sin(i / 2.3)
                 + rng.uniform(-8, 8))
        points.append((ts, max(V_MIN, min(V_MAX, value))))
    return points


def render(points):
    return render_line_chart(points, WIDTH, HEIGHT, T_MIN, T_MAX,
                             V_MIN, V_MAX)


class TestColumnAggregate:
    def test_tracks_four_extremes(self):
        aggregate = ColumnAggregate()
        for ts, value in [(1, 5), (2, -3), (3, 9), (4, 2)]:
            aggregate.add(ts, value)
        assert aggregate.first == (1, 5)
        assert aggregate.last == (4, 2)
        assert aggregate.minimum == (2, -3)
        assert aggregate.maximum == (3, 9)
        assert aggregate.count == 4

    def test_points_deduplicated_and_ordered(self):
        aggregate = ColumnAggregate()
        aggregate.add(5, 1)  # single point: all four roles coincide
        assert aggregate.points() == [(5, 1)]

    def test_merge(self):
        a, b = ColumnAggregate(), ColumnAggregate()
        a.add(1, 10)
        a.add(2, -5)
        b.add(3, 50)
        b.add(4, 0)
        merged = a.merge(b)
        assert merged.first == (1, 10)
        assert merged.last == (4, 0)
        assert merged.minimum == (2, -5)
        assert merged.maximum == (3, 50)


class TestM4Correctness:
    """The I2 claim: reduced rendering == raw rendering, pixel for pixel."""

    @pytest.mark.parametrize("n", [50, 500, 5000])
    def test_pixel_exact_at_any_rate(self, n):
        points = wavy_series(n, seed=n)
        aggregator = M4Aggregator(T_MIN, T_MAX, WIDTH)
        aggregator.insert_many(points)
        assert pixel_error(render(aggregator.points()), render(points)) == 0

    def test_pixel_exact_on_random_walk(self):
        rng = random.Random(99)
        value = 0.0
        points = []
        for ts in range(0, 1000, 1):
            value = max(V_MIN, min(V_MAX, value + rng.uniform(-5, 5)))
            points.append((float(ts), value))
        aggregator = M4Aggregator(T_MIN, T_MAX, WIDTH)
        aggregator.insert_many(points)
        assert pixel_error(render(aggregator.points()), render(points)) == 0

    def test_pixel_exact_with_sparse_columns(self):
        # Large gaps: some columns empty; inter-column joins must survive.
        points = [(0, 0), (10, 80), (500, -60), (990, 40)]
        aggregator = M4Aggregator(T_MIN, T_MAX, WIDTH)
        aggregator.insert_many(points)
        assert pixel_error(render(aggregator.points()), render(points)) == 0


class TestM4Minimality:
    """Dropping any of the four roles can change the raster: none of
    first/last/min/max is redundant in general (the I2 minimality claim).

    Uses an adversarial series where, in one column, the four roles sit
    at pixel-distinct positions: the min/max carry the vertical span,
    and the first/last anchor the long inter-column joins.
    """

    # Chart: 30 columns over [0, 300), values 0..100.
    GEOMETRY = dict(width=30, height=100, t_min=0, t_max=300,
                    v_min=0, v_max=100)
    SERIES = [
        (50.0, 50.0),    # column 5
        (111.0, 90.0),   # column 11: first
        (113.0, 99.0),   # column 11: max
        (117.0, 1.0),    # column 11: min
        (119.0, 10.0),   # column 11: last
        (250.0, 50.0),   # column 25
    ]

    def _render(self, points):
        geometry = self.GEOMETRY
        return render_line_chart(points, geometry["width"],
                                 geometry["height"], geometry["t_min"],
                                 geometry["t_max"], geometry["v_min"],
                                 geometry["v_max"])

    @pytest.mark.parametrize("role", ["first", "last", "minimum", "maximum"])
    def test_each_role_is_necessary(self, role):
        aggregator = M4Aggregator(self.GEOMETRY["t_min"],
                                  self.GEOMETRY["t_max"],
                                  self.GEOMETRY["width"])
        aggregator.insert_many(self.SERIES)
        reference = self._render(self.SERIES)
        # Full M4 is exact on this series.
        assert pixel_error(self._render(aggregator.points()),
                           reference) == 0
        # Remove one role's tuple from the adversarial column.
        aggregate = aggregator.column(11)
        keep = {aggregate.first, aggregate.last, aggregate.minimum,
                aggregate.maximum}
        assert len(keep) == 4
        keep.discard(getattr(aggregate, role))
        reduced = ([p for p in aggregator.points()
                    if not 110 <= p[0] < 120]
                   + sorted(keep, key=lambda p: p[0]))
        assert pixel_error(self._render(reduced), reference) > 0, \
            "dropping %s should change the raster" % role


class TestRateIndependence:
    def test_retained_tuples_bounded_by_4x_width(self):
        for rate in (100, 1000, 20000):
            points = wavy_series(rate, seed=rate)
            aggregator = M4Aggregator(T_MIN, T_MAX, WIDTH)
            aggregator.insert_many(points)
            assert aggregator.tuples_retained <= 4 * WIDTH

    def test_reduction_ratio_improves_with_rate(self):
        small = M4Aggregator(T_MIN, T_MAX, WIDTH)
        small.insert_many(wavy_series(200))
        large = M4Aggregator(T_MIN, T_MAX, WIDTH)
        large.insert_many(wavy_series(20000))
        assert large.reduction_ratio() < small.reduction_ratio()
        assert large.reduction_ratio() < 0.01  # >100x reduction at 20k


class TestRescale:
    def test_downscale_matches_direct_aggregation(self):
        points = wavy_series(2000, seed=8)
        fine = M4Aggregator(T_MIN, T_MAX, 80)
        fine.insert_many(points)
        direct = M4Aggregator(T_MIN, T_MAX, 20)
        direct.insert_many(points)
        scaled = fine.rescale(20)
        assert scaled.points() == direct.points()

    def test_upscale_rejected(self):
        aggregator = M4Aggregator(T_MIN, T_MAX, 20)
        with pytest.raises(ValueError):
            aggregator.rescale(40)


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            M4Aggregator(0, 0, 10)
        with pytest.raises(ValueError):
            M4Aggregator(0, 10, 0)

    def test_out_of_range_timestamp(self):
        aggregator = M4Aggregator(0, 10, 4)
        with pytest.raises(ValueError):
            aggregator.insert(11, 0)


class TestBaselineErrors:
    """Baselines either transfer more or render wrong -- never both right."""

    def test_sampling_has_pixel_error(self):
        points = wavy_series(5000, seed=21)
        reference = render(points)
        sampler = NthSampler(50)  # comparable volume to M4
        sampler.insert_many(points)
        assert pixel_error(render(sampler.points()), reference) > 0

    def test_paa_has_pixel_error(self):
        points = wavy_series(5000, seed=22)
        reference = render(points)
        paa = PiecewiseAverage(T_MIN, T_MAX, WIDTH)
        paa.insert_many(points)
        assert pixel_error(render(paa.points()), reference) > 0

    def test_minmax_cheaper_but_wrong(self):
        points = wavy_series(5000, seed=23)
        reference = render(points)
        minmax = MinMaxReducer(T_MIN, T_MAX, WIDTH)
        minmax.insert_many(points)
        assert minmax.tuples_transferred <= 2 * WIDTH
        assert pixel_error(render(minmax.points()), reference) > 0

    def test_raw_is_exact_but_unbounded(self):
        points = wavy_series(3000, seed=24)
        raw = RawTransfer()
        raw.insert_many(points)
        assert raw.tuples_transferred == 3000
        assert pixel_error(render(raw.points()), render(points)) == 0

    def test_reservoir_respects_budget(self):
        points = wavy_series(5000, seed=25)
        sampler = RandomSampler(budget=100)
        sampler.insert_many(points)
        assert sampler.tuples_transferred == 100
