"""Unit tests for the columnar batch layout, its wire codec and the
fused column kernels.

The contract under test is *losslessness*: row -> columnar -> row (and
columnar -> bytes -> columnar -> row) must reproduce the exact records,
including ``None`` timestamps, exact value types (``bool`` is not
``int``), keys of every kind, and empty strings.  Schema inference must
refuse -- returning ``None`` so the caller keeps the row batch -- rather
than ever coercing.
"""

import pytest

from repro.plan.chaining import compile_column_chain
from repro.runtime.columnar import (
    KIND_F64,
    KIND_I64,
    KIND_NONE,
    KIND_OBJ,
    KIND_STR,
    ColumnarCodecError,
    ColumnSchema,
    batch_to_columnar,
    decode_columnar,
    encode_columnar,
    materialize_records,
)
from repro.runtime.elements import ColumnarBatch, Record, RecordBatch
from repro.runtime.operators import (
    FilterOperator,
    FlatMapOperator,
    MapOperator,
)


def roundtrip(records):
    batch = batch_to_columnar(records)
    assert batch is not None, "expected a schematizable batch"
    assert materialize_records(batch) == list(records)
    decoded = decode_columnar(bytes(encode_columnar(batch)))
    assert decoded.schema == batch.schema
    assert materialize_records(decoded) == list(records)
    return batch


class TestSchemaInference:
    def test_scalar_i64(self):
        batch = roundtrip([Record(i, i * 10) for i in range(8)])
        assert batch.schema == ColumnSchema(KIND_I64, KIND_NONE, 0,
                                            (KIND_I64,))

    def test_scalar_f64_and_str(self):
        assert roundtrip([Record(float(i), i) for i in range(4)]
                         ).schema.value_kinds == (KIND_F64,)
        assert roundtrip([Record("s%d" % i, i) for i in range(4)]
                         ).schema.value_kinds == (KIND_STR,)

    def test_tuple_values_get_per_position_columns(self):
        records = [Record((i, float(i), "x%d" % i), i) for i in range(6)]
        batch = roundtrip(records)
        assert batch.schema.arity == 3
        assert batch.schema.value_kinds == (KIND_I64, KIND_F64, KIND_STR)

    def test_mixed_tuple_position_degrades_to_obj_column(self):
        records = [Record((i, [i]), i) for i in range(4)]
        batch = roundtrip(records)
        assert batch.schema.value_kinds == (KIND_I64, KIND_OBJ)

    def test_scalar_object_refuses(self):
        # A whole-value object column is a pickle with extra steps.
        assert batch_to_columnar([Record([1, 2], 0)]) is None
        assert batch_to_columnar([]) is None

    def test_bool_is_not_i64(self):
        # array('q') would coerce True -> 1; exact types only.
        assert batch_to_columnar([Record(True, 0)]) is None
        records = [Record((1, True), 0), Record((2, False), 1)]
        assert roundtrip(records).schema.value_kinds == (KIND_I64, KIND_OBJ)

    def test_oversized_int_falls_out_of_i64(self):
        records = [Record((2 ** 70, 1), 0)]
        assert roundtrip(records).schema.value_kinds == (KIND_OBJ, KIND_I64)

    def test_none_timestamps_survive(self):
        records = [Record(1, None), Record(2, 5), Record(3, None)]
        batch = roundtrip(records)
        assert batch.timestamp_list() == [None, 5, None]
        all_none = roundtrip([Record(1, None), Record(2, None)])
        assert all_none.schema.ts_kind == KIND_NONE

    def test_non_int_timestamp_refuses(self):
        assert batch_to_columnar([Record(1, 1.5)]) is None

    def test_key_kinds(self):
        assert roundtrip([Record(1, 0, key=7)]).schema.key_kind == KIND_I64
        assert roundtrip([Record(1, 0, key="k")]).schema.key_kind == KIND_STR
        assert roundtrip([Record(1, 0, key=(1, 2))]
                         ).schema.key_kind == KIND_OBJ
        assert roundtrip([Record(1, 0)]).schema.key_kind == KIND_NONE

    def test_empty_and_unicode_strings(self):
        roundtrip([Record("", 0), Record("héllo ☃", 1), Record("", 2)])

    def test_cached_schema_fast_path_and_mismatch_reinference(self):
        first = batch_to_columnar([Record(i, i) for i in range(4)])
        again = batch_to_columnar([Record(9, 9)], first.schema)
        assert again.schema == first.schema
        # Batch stopped conforming: must re-infer, not fail.
        drifted = batch_to_columnar([Record("now a string", 3)],
                                    first.schema)
        assert drifted.schema.value_kinds == (KIND_STR,)


class TestColumnarBatchElement:
    def test_is_a_batch_to_row_consumers(self):
        batch = batch_to_columnar([Record(1, 0), Record(2, 1)])
        assert batch.is_batch and batch.is_columnar
        assert not RecordBatch([Record(1, 0)]).is_columnar
        assert len(batch) == 2
        assert batch.records == [Record(1, 0), Record(2, 1)]

    def test_equals_row_twin_and_hash(self):
        records = [Record((1, "a"), 0, key="k"), Record((2, "b"), 1)]
        batch = batch_to_columnar(records)
        row = RecordBatch(list(records))
        assert batch == row and row == batch
        assert hash(batch) == hash(row)

    def test_slice(self):
        records = [Record(i, i) for i in range(10)]
        batch = batch_to_columnar(records)
        part = batch.slice(3, 7)
        assert isinstance(part, ColumnarBatch)
        assert part.records == records[3:7]

    def test_record_batch_hash_regression(self):
        # RecordBatch defined __eq__ without __hash__ for several
        # releases, silently becoming unhashable.
        a = RecordBatch([Record(1, 0), Record(2, 1)])
        b = RecordBatch([Record(1, 0), Record(2, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestCodecErrors:
    def test_truncated_frame(self):
        payload = encode_columnar(batch_to_columnar([Record(1, 0)]))
        for cut in (0, 3, len(payload) // 2, len(payload) - 1):
            with pytest.raises(ColumnarCodecError):
                decode_columnar(payload[:cut])

    def test_garbage_frame(self):
        with pytest.raises(ColumnarCodecError):
            decode_columnar(b"\xde\xad\xbe\xef" * 8)


class TestColumnKernels:
    def test_map_filter_flatmap_kernels_match_row_path(self):
        records = [Record(i, i, key=i % 3) for i in range(20)]
        ops = [MapOperator(lambda v: v * 2, name="m"),
               FilterOperator(lambda v: v % 3 != 0, name="f"),
               FlatMapOperator(lambda v: [v, v + 1], name="fm")]
        kernel, prefix = compile_column_chain(ops)
        assert kernel is not None and prefix == 3
        values, timestamps, keys = kernel(
            [r.value for r in records],
            [r.timestamp for r in records],
            [r.key for r in records])
        expected = []
        for r in records:
            v = r.value * 2
            if v % 3 != 0:
                expected.extend([(v, r.timestamp, r.key),
                                 (v + 1, r.timestamp, r.key)])
        assert list(zip(values, timestamps, keys)) == expected

    def test_filter_all_kept_returns_identity(self):
        kernel = FilterOperator(lambda v: True, name="f").make_column_kernel()
        values, timestamps, keys = [1, 2], [0, 1], [None, None]
        out = kernel(values, timestamps, keys)
        assert out[0] is values and out[1] is timestamps and out[2] is keys

    def test_stateful_operator_breaks_the_chain(self):
        from repro.runtime.operators import KeyedReduceOperator
        ops = [MapOperator(lambda v: v, name="m"),
               KeyedReduceOperator(lambda a, b: a + b, name="r"),
               MapOperator(lambda v: v, name="m2")]
        kernel, prefix = compile_column_chain(ops)
        assert kernel is not None and prefix == 1
        assert compile_column_chain(
            [KeyedReduceOperator(lambda a, b: a + b, name="r")]) == (None, 0)
