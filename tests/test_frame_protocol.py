"""Unit tests for the length-prefixed pipe frame protocol.

The failure modes the multiprocess backend must diagnose instead of
hanging on: a peer that died mid-write (truncated frame), a garbled
length prefix (would otherwise mean waiting for gigabytes that never
arrive), and an unpicklable payload.  Each raises :class:`FrameError`
naming the worker pair.
"""

import os
import pickle

import pytest

from repro.runtime.multiprocess import (
    _LEN,
    _MAX_FRAME,
    FrameError,
    _FrameReader,
    _FrameWriter,
)


def pipe_pair(peer="data pipe worker 0 -> worker 1"):
    read_fd, write_fd = os.pipe()
    return _FrameReader(read_fd, peer=peer), write_fd


class TestHappyPath:
    def test_round_trip(self):
        reader, write_fd = pipe_pair()
        writer = _FrameWriter(write_fd)
        writer.send(("ack", 1, {"k": "v"}))
        writer.send(("heartbeat", 0))
        assert reader.read_available() == [("ack", 1, {"k": "v"}),
                                           ("heartbeat", 0)]
        writer.close()
        assert reader.read_available() == []
        assert reader.eof
        reader.close()

    def test_partial_frame_waits_while_peer_alive(self):
        """Half a frame with the writer still open is just backpressure,
        not corruption."""
        reader, write_fd = pipe_pair()
        payload = pickle.dumps(("collect", (1, 0), list(range(100))))
        os.write(write_fd, _LEN.pack(len(payload)) + payload[:10])
        assert reader.read_available() == []
        assert not reader.corrupt
        os.write(write_fd, payload[10:])
        assert reader.read_available() == [("collect", (1, 0),
                                            list(range(100)))]
        os.close(write_fd)
        reader.close()


class TestCorruption:
    def test_truncated_frame_at_eof_raises_naming_the_pair(self):
        """A peer that died mid-write leaves a partial frame; the reader
        must diagnose it instead of blocking forever."""
        reader, write_fd = pipe_pair(peer="data pipe worker 1 -> worker 0")
        payload = pickle.dumps(("done", {"rounds": 3}))
        os.write(write_fd, _LEN.pack(len(payload)) + payload[:-4])
        os.close(write_fd)  # the peer is gone
        with pytest.raises(FrameError) as excinfo:
            reader.read_available()
        assert "worker 1 -> worker 0" in str(excinfo.value)
        assert "truncated" in str(excinfo.value)
        assert reader.corrupt
        reader.close()

    def test_messages_before_the_tear_are_parsed_first(self):
        """Only the torn tail is corrupt; complete frames ahead of it
        already arrived and a retry must not see them again."""
        reader, write_fd = pipe_pair()
        good = pickle.dumps(("heartbeat", 1))
        os.write(write_fd, _LEN.pack(len(good)) + good)
        os.write(write_fd, _LEN.pack(500) + b"half")
        os.close(write_fd)
        with pytest.raises(FrameError, match="truncated"):
            reader.read_available()
        reader.close()

    def test_insane_length_prefix_raises_immediately(self):
        """A garbled prefix decodes to an absurd length; waiting for
        those bytes would hang forever, so it must raise now -- even
        with the writer still alive."""
        reader, write_fd = pipe_pair(peer="control pipe parent -> worker 0")
        os.write(write_fd, _LEN.pack(_MAX_FRAME + 1) + b"\xde\xad\xbe\xef")
        with pytest.raises(FrameError) as excinfo:
            reader.read_available()
        assert "garbled" in str(excinfo.value)
        assert "parent -> worker 0" in str(excinfo.value)
        os.close(write_fd)
        reader.close()

    def test_unpicklable_payload_raises(self):
        reader, write_fd = pipe_pair()
        os.write(write_fd, _LEN.pack(8) + b"notapkl!")
        with pytest.raises(FrameError, match="unpickle"):
            reader.read_available()
        os.close(write_fd)
        reader.close()

    def test_clean_eof_is_not_corruption(self):
        reader, write_fd = pipe_pair()
        writer = _FrameWriter(write_fd)
        writer.send(("done", {}))
        writer.close()
        assert reader.read_available() == [("done", {})]
        assert reader.read_available() == []
        assert reader.eof and not reader.corrupt
        reader.close()
