"""API-surface snapshot: the public facade is frozen in
``tests/api_surface.txt``; accidental additions, removals or renames
fail here before any user sees them.

Refresh intentionally with::

    PYTHONPATH=src python tests/test_api_surface.py --refresh
"""

import inspect
import os
import re

SNAPSHOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "api_surface.txt")

#: module path -> list of classes whose public methods are part of the
#: frozen surface (None freezes the module's public names only).
SURFACE = [
    "repro",
    "repro.api",
    "repro.api.environment:Environment",
    "repro.api.dataset:DataSet",
    "repro.api.dataset:GroupedDataSet",
    "repro.api.stream:DataStream",
    "repro.api.stream:KeyedStream",
    "repro.api.stream:WindowedStream",
    "repro.observability",
    "repro.runtime.engine:EngineConfig",
    "repro.runtime.engine:Engine",
]


def _public_names(obj):
    names = getattr(obj, "__all__", None)
    if names is None:
        names = [name for name in dir(obj) if not name.startswith("_")]
    return sorted(names)


def _signature(fn):
    try:
        text = str(inspect.signature(fn))
    except (TypeError, ValueError):
        return "(...)"
    # Callable defaults repr with a memory address; snapshots must be
    # byte-stable across interpreter runs.
    return re.sub(r"<function .*? at 0x[0-9a-f]+>", "<callable>", text)


def _class_surface(cls):
    lines = ["  __init__%s" % _signature(cls.__init__)]
    for name in _public_names(cls):
        member = inspect.getattr_static(cls, name)
        if isinstance(member, property):
            lines.append("  %s [property]" % name)
        elif callable(member) or isinstance(member, (staticmethod,
                                                     classmethod)):
            lines.append("  %s%s" % (name, _signature(getattr(cls, name))))
        else:
            lines.append("  %s [attr]" % name)
    return lines


def render_surface():
    import importlib
    lines = []
    for entry in SURFACE:
        if ":" in entry:
            module_name, class_name = entry.split(":")
            cls = getattr(importlib.import_module(module_name), class_name)
            lines.append("%s.%s:" % (module_name, class_name))
            lines.extend(_class_surface(cls))
        else:
            module = importlib.import_module(entry)
            lines.append("%s: %s" % (entry, " ".join(_public_names(module))))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def test_api_surface_matches_snapshot():
    with open(SNAPSHOT) as handle:
        frozen = handle.read()
    fresh = render_surface()
    assert fresh == frozen, (
        "public API surface drifted from tests/api_surface.txt.\n"
        "If the change is intentional, refresh the snapshot with:\n"
        "  PYTHONPATH=src python tests/test_api_surface.py --refresh\n")


if __name__ == "__main__":
    import sys
    if "--refresh" in sys.argv:
        with open(SNAPSHOT, "w") as handle:
            handle.write(render_surface())
        print("refreshed %s" % SNAPSHOT)
    else:
        print(render_surface())
