"""Tests for delta (content-sensitive) windows through Cutty."""

import pytest

from repro.cutty import CuttyAggregator, DeltaWindows
from repro.windowing.aggregates import AvgAggregate, CountAggregate

from tests.test_cutty_strategies import run


class TestDeltaWindows:
    def test_splits_on_threshold_crossing(self):
        # Values drift slowly, then jump: new window at each jump.
        stream = [(10.0, 0), (10.4, 10), (10.8, 20),   # within delta of 10.0
                  (12.0, 30),                          # jump: new window
                  (12.3, 40),
                  (9.0, 50)]                           # jump: new window
        aggregator = CuttyAggregator(CountAggregate(),
                                     DeltaWindows(1.0, value_fn=lambda v: v))
        results = run(aggregator, stream)
        assert results == {(0, 30): 3, (30, 50): 2, (50, 51): 1}

    def test_single_window_when_values_stay_close(self):
        stream = [(5.0 + 0.01 * i, i) for i in range(100)]
        aggregator = CuttyAggregator(CountAggregate(), DeltaWindows(10.0))
        results = run(aggregator, stream)
        assert results == {(0, 100): 100}

    def test_value_fn_extraction(self):
        stream = [(("sensor", 1.0), 0), (("sensor", 5.0), 10),
                  (("sensor", 5.5), 20)]
        aggregator = CuttyAggregator(
            CountAggregate(), DeltaWindows(2.0, value_fn=lambda v: v[1]))
        results = run(aggregator, stream)
        assert results == {(0, 10): 1, (10, 21): 2}

    def test_average_per_regime(self):
        """The classic use: average per quasi-stationary regime."""
        stream = ([(100.0, t) for t in range(0, 50, 10)]
                  + [(200.0, t) for t in range(50, 100, 10)])
        aggregator = CuttyAggregator(AvgAggregate(), DeltaWindows(50.0))
        results = run(aggregator, stream)
        assert results[(0, 50)] == pytest.approx(100.0)
        assert results[(50, 91)] == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeltaWindows(0)

    def test_empty_stream_flush(self):
        spec = DeltaWindows(1.0)
        assert spec.flush(100) == []
