"""Differential pinning of session-window merge semantics.

Two layers, both over generated gap patterns that cluster on the merge
boundary (``gap - 1``, ``gap``, ``gap + 1``):

* assigner + ``merge_windows`` directly against the sort-and-merge
  reference (``repro.testing.reference``) -- pins the *rule*: an element
  joins a session iff its timestamp is at most ``last + gap``, i.e.
  touching proto-windows merge;
* the full streaming pipeline through the session-merge oracle -- pins
  the same rule end-to-end under out-of-order arrival and watermarks.
"""

import pytest

from repro.testing.generators import generate_gap_pattern_elements
from repro.testing.oracles import SessionMergeOracle
from repro.testing.reference import keyed_windows
from repro.testing.seeds import rng_for
from repro.windowing.assigners import EventTimeSessionWindows
from repro.windowing.windows import TimeWindow, merge_windows


def _merged_sessions_via_assigner(elements, gap):
    """Session windows computed the operator's way: per-element proto
    windows from the assigner, merged with ``merge_windows``."""
    assigner = EventTimeSessionWindows.with_gap(gap)
    per_key = {}
    for key, value, ts in elements:
        for window in assigner.assign(value, ts):
            per_key.setdefault(key, []).append(window)
    result = set()
    for key, windows in per_key.items():
        for group in merge_windows(windows):
            cover = group[0]
            for window in group[1:]:
                cover = cover.cover(window)
            result.add((key, cover.start, cover.end))
    return result


@pytest.mark.parametrize("case_index", range(15))
def test_assigner_merge_matches_sort_and_merge_reference(case_index):
    rng = rng_for(0, "session-assigner", case_index)
    gap = rng.randint(2, 50)
    elements = generate_gap_pattern_elements(rng, gap,
                                             n=rng.randint(2, 120),
                                             num_keys=rng.randint(1, 4))
    expected = set(keyed_windows({"kind": "session", "gap": gap},
                                 elements, "count"))
    assert _merged_sessions_via_assigner(elements, gap) == expected


def test_touching_proto_windows_merge_exactly_at_gap():
    # ts=0 and ts=gap produce proto windows [0, gap) and [gap, 2*gap):
    # touching, so one merge group; ts=gap+1 must start a new session.
    gap = 10
    groups = merge_windows([TimeWindow(0, gap), TimeWindow(gap, 2 * gap)])
    assert len(groups) == 1 and len(groups[0]) == 2
    groups = merge_windows([TimeWindow(0, gap),
                            TimeWindow(gap + 1, 2 * gap + 1)])
    assert len(groups) == 2


@pytest.mark.parametrize("case_index", range(6))
def test_streaming_session_merge_oracle(case_index):
    oracle = SessionMergeOracle()
    rng = rng_for(0, oracle.name, case_index)
    case = oracle.generate(rng, 0, case_index)
    mismatch = oracle.check(case)
    assert mismatch is None, "%s\n%s" % (case.seed_line, mismatch)
