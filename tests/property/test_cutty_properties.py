"""Property-based tests (hypothesis) for the Cutty stack.

The invariants checked here are the paper's correctness claims:
slicing + FlatFAT produces exactly the same window results as brute
force, for arbitrary in-order streams, window parameters and aggregates;
and the one-lift-per-record property holds unconditionally.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cutty import (
    CuttyAggregator,
    PeriodicWindows,
    SessionWindows,
    SharedCuttyAggregator,
)
from repro.cutty.flatfat import FlatFAT
from repro.metrics import AggregationCostCounter
from repro.windowing.aggregates import MaxAggregate, SumAggregate

from tests.test_cutty_strategies import (
    reference_periodic,
    reference_sessions,
    run,
)


@st.composite
def in_order_streams(draw, max_size=120):
    gaps = draw(st.lists(st.integers(min_value=0, max_value=25),
                         min_size=1, max_size=max_size))
    values = draw(st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=len(gaps), max_size=len(gaps)))
    ts = 0
    stream = []
    for gap, value in zip(gaps, values):
        ts += gap
        stream.append((value, ts))
    return stream


@st.composite
def window_shapes(draw):
    slide = draw(st.integers(min_value=1, max_value=30))
    multiplier = draw(st.integers(min_value=1, max_value=10))
    extra = draw(st.integers(min_value=0, max_value=slide - 1))
    size = slide * multiplier + extra
    if size < slide:
        size = slide
    return size, slide


@settings(max_examples=60, deadline=None)
@given(stream=in_order_streams(), shape=window_shapes())
def test_cutty_periodic_equals_brute_force(stream, shape):
    size, slide = shape
    aggregator = CuttyAggregator(SumAggregate(), PeriodicWindows(size, slide))
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


@settings(max_examples=60, deadline=None)
@given(stream=in_order_streams(), shape=window_shapes())
def test_cutty_periodic_max_equals_brute_force(stream, shape):
    """Non-invertible aggregate: correctness cannot lean on subtraction."""
    size, slide = shape
    aggregator = CuttyAggregator(MaxAggregate(), PeriodicWindows(size, slide))
    expected = reference_periodic(stream, size, slide, aggregate_fn=max)
    assert run(aggregator, stream) == expected


@settings(max_examples=60, deadline=None)
@given(stream=in_order_streams(),
       gap=st.integers(min_value=1, max_value=40))
def test_cutty_sessions_equal_brute_force(stream, gap):
    aggregator = CuttyAggregator(SumAggregate(), SessionWindows(gap))
    assert run(aggregator, stream) == reference_sessions(stream, gap)


@settings(max_examples=40, deadline=None)
@given(stream=in_order_streams(),
       shapes=st.lists(window_shapes(), min_size=2, max_size=4))
def test_shared_queries_unaffected_by_cohabitation(stream, shapes):
    """Sharing must be transparent: each query's results in a shared
    aggregator equal its results when run alone."""
    queries = {index: PeriodicWindows(size, slide)
               for index, (size, slide) in enumerate(shapes)}
    shared = SharedCuttyAggregator(SumAggregate(), queries)
    shared_results = {}
    for value, ts in stream:
        for result in shared.insert(value, ts):
            shared_results.setdefault(result.query_id, {})[
                (result.start, result.end)] = result.value
    for result in shared.flush():
        shared_results.setdefault(result.query_id, {})[
            (result.start, result.end)] = result.value

    for index, (size, slide) in enumerate(shapes):
        alone = CuttyAggregator(SumAggregate(), PeriodicWindows(size, slide))
        assert shared_results.get(index, {}) == run(alone, stream)


@settings(max_examples=60, deadline=None)
@given(stream=in_order_streams(), shape=window_shapes())
def test_one_lift_per_record_invariant(stream, shape):
    size, slide = shape
    counter = AggregationCostCounter()
    aggregator = CuttyAggregator(SumAggregate(),
                                 PeriodicWindows(size, slide), counter)
    for value, ts in stream:
        aggregator.insert(value, ts)
    assert counter.lifts.value == len(stream)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                       min_size=1, max_size=200),
       window=st.integers(min_value=1, max_value=50))
def test_flatfat_sliding_equals_python_sum(values, window):
    tree = FlatFAT(SumAggregate(), 4)
    for index, value in enumerate(values):
        tree.append(value)
        if index >= window:
            tree.evict_front(index - window + 1)
        lo = max(0, index - window + 1)
        assert tree.query_all() == sum(values[lo:index + 1])


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(), min_size=1, max_size=100),
       bounds=st.tuples(st.integers(min_value=0, max_value=100),
                        st.integers(min_value=0, max_value=100)))
def test_flatfat_arbitrary_range_queries(values, bounds):
    tree = FlatFAT(SumAggregate(), 4)
    for value in values:
        tree.append(value)
    start, end = min(bounds), max(bounds)
    end = min(end, len(values))
    start = min(start, end)
    expected = sum(values[start:end]) if start < end else None
    assert tree.query(start, end) == expected
