"""Property tests for the batched execution mode.

The invariant under test: producers split record batches at every
control-element boundary (watermark, checkpoint barrier, end-of-stream),
and consumers split them at the step-budget boundary -- and none of that
splitting may ever reorder, drop or duplicate a record.  At parallelism
1 every channel is a single FIFO, so the engine's output must be
*sequence*-identical between ``batch_size=1`` and any other batch size,
for arbitrary streams, arbitrary batch sizes and with checkpoint
barriers interleaving the data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.environment import StreamExecutionEnvironment
from repro.runtime.engine import EngineConfig
from repro.testing.oracles import run_streaming_windows


@st.composite
def keyed_streams(draw):
    """(key, value, ts) tuples with unconstrained timestamp disorder."""
    size = draw(st.integers(min_value=1, max_value=120))
    keys = draw(st.lists(st.integers(min_value=0, max_value=5),
                         min_size=size, max_size=size))
    values = draw(st.lists(st.integers(min_value=-50, max_value=50),
                           min_size=size, max_size=size))
    stamps = draw(st.lists(st.integers(min_value=0, max_value=400),
                           min_size=size, max_size=size))
    return list(zip(keys, values, stamps))


def run_keyed_count(elements, config):
    env = StreamExecutionEnvironment(config=config)
    result = (env.from_collection(elements)
              .map(lambda e: (e[0], e[1] * 2))
              .filter(lambda e: e[1] % 3 != 1)
              .key_by(lambda e: e[0])
              .count()
              .collect())
    env.execute()
    return result.get()


@settings(max_examples=30, deadline=None)
@given(elements=keyed_streams(),
       batch_size=st.integers(min_value=2, max_value=64),
       elements_per_step=st.integers(min_value=1, max_value=8))
def test_batching_never_reorders_or_drops(elements, batch_size,
                                          elements_per_step):
    """Ordered sink-sequence equality: tiny step budgets force batch
    splitting at the consumer, checkpoint barriers force flushes at the
    producer, and the output sequence must not care."""
    scalar = run_keyed_count(elements, EngineConfig(
        elements_per_step=elements_per_step, checkpoint_interval_ms=3,
        batch_size=1))
    batched = run_keyed_count(elements, EngineConfig(
        elements_per_step=elements_per_step, checkpoint_interval_ms=3,
        batch_size=batch_size))
    assert batched == scalar


@settings(max_examples=20, deadline=None)
@given(elements=keyed_streams(),
       batch_size=st.integers(min_value=2, max_value=48))
def test_watermark_boundaries_preserved_in_windows(elements, batch_size):
    """Watermark splitting: an event-time window pipeline (watermarks
    interleaving the data, late records dropped by the operator) must
    produce the identical result map in both modes at parallelism 1 --
    even for arbitrarily disordered timestamps, because a single FIFO
    preserves the exact record/watermark sequence."""
    elements = [("k%d" % k, value, ts) for k, value, ts in elements]
    assigner = {"kind": "tumbling", "size": 50}
    scalar, _ = run_streaming_windows(
        elements, assigner, "sum", ooo_bound=8, parallelism=1,
        config=EngineConfig(batch_size=1, checkpoint_interval_ms=5))
    batched, _ = run_streaming_windows(
        elements, assigner, "sum", ooo_bound=8, parallelism=1,
        config=EngineConfig(batch_size=batch_size,
                            checkpoint_interval_ms=5))
    assert batched == scalar


@settings(max_examples=20, deadline=None)
@given(elements=keyed_streams(),
       batch_size=st.integers(min_value=2, max_value=32),
       threshold=st.integers(min_value=3, max_value=10))
def test_quarantine_semantics_identical_under_batching(elements, batch_size,
                                                       threshold):
    """Poison records quarantined from a fused batch must match the
    scalar path exactly: same dead letters, same surviving output."""
    def run(config):
        env = StreamExecutionEnvironment(config=config)

        def toxic(e):
            if e[1] == 7:  # poison value
                raise ValueError("poison")
            return e
        result = (env.from_collection(elements)
                  .rebalance()
                  .map(toxic)
                  .global_()
                  .collect())
        job = env.execute()
        return result.get(), [letter.value for letter in job.dead_letters]

    poison_count = sum(1 for e in elements if e[1] == 7)
    if poison_count > threshold:
        return  # escalation path; covered by the chaos suite
    scalar_out, scalar_dead = run(EngineConfig(
        quarantine_threshold=threshold, batch_size=1))
    batched_out, batched_dead = run(EngineConfig(
        quarantine_threshold=threshold, batch_size=batch_size))
    assert batched_out == scalar_out
    assert batched_dead == scalar_dead
