"""The differential oracle battery, instrumented: ``REPRO_OBSERVABILITY=1``
turns the observability layer on for every engine the oracles build, and
the whole battery must stay green -- instrumentation must never change
what a pipeline computes.
"""

import pytest

from repro.testing.fuzz import build_oracles, run_fuzz
from repro.testing.oracles import DEFAULT_ORACLE_NAMES, make_oracle
from repro.testing.seeds import rng_for, root_seed

ROOT = root_seed(default=0)


@pytest.fixture(autouse=True)
def _observability_on(monkeypatch):
    monkeypatch.setenv("REPRO_OBSERVABILITY", "1")


@pytest.mark.parametrize("oracle_name", DEFAULT_ORACLE_NAMES)
def test_oracle_green_with_observability(oracle_name):
    oracle = make_oracle(oracle_name)
    for index in range(4):
        rng = rng_for(ROOT, oracle.name, index)
        case = oracle.generate(rng, ROOT, index)
        mismatch = oracle.check(case)
        assert mismatch is None, (
            "observability changed pipeline semantics:\n%s\n%s"
            % (case.seed_line, mismatch))


def test_fuzz_runner_green_with_observability():
    report = run_fuzz(ROOT, build_oracles(list(DEFAULT_ORACLE_NAMES)),
                      budget_cases=10)
    assert report.ok, "\n\n".join(
        failure.detail for failure in report.failures)
