"""Property tests for FlatFAT and the exponential histogram, driven by
the differential harness's seeded generators (``repro.testing``).

FlatFAT invariants:

* any interleaving of append / update / evict_front leaves every range
  query equal to a strictly left-to-right fold over the live leaves
  (checked with a non-commutative aggregate, so ordering mistakes and
  ring-wrap bugs cannot cancel out);
* a tree rebuilt from scratch from the current live leaves answers
  every query identically to the incrementally-maintained tree.

Exponential histogram invariant (Datar et al.): the estimate of the
sliding-window count stays within the configured relative error of the
exact count.
"""

import pytest

from repro.cutty.flatfat import FlatFAT
from repro.ml.exphist import ExponentialHistogram
from repro.testing.generators import generate_in_order_stream
from repro.testing.seeds import rng_for
from repro.windowing.aggregates import SumAggregate


class ConcatAggregate:
    """Non-commutative merge: catches any right-to-left or wrapped
    combine that a sum would silently absorb."""

    def merge(self, left, right):
        return left + right


def _fold(values):
    result = None
    for value in values:
        result = value if result is None else result + value
    return result


def _random_ops(rng, num_ops):
    """Drive a FlatFAT and a plain-list model through the same ops."""
    tree = FlatFAT(ConcatAggregate(), initial_capacity=2)
    model = {}  # absolute index -> value, for live leaves
    next_value = 0
    for _ in range(num_ops):
        op = rng.choice(["append", "append", "append", "update", "evict"])
        if op == "append" or not model:
            index = tree.append("(%d)" % next_value)
            model[index] = "(%d)" % next_value
            next_value += 1
        elif op == "update":
            index = rng.choice(sorted(model))
            replacement = "[%d]" % next_value
            next_value += 1
            tree.update(index, replacement)
            model[index] = replacement
        else:
            new_front = tree.front_index + rng.randint(0, max(1, len(model)))
            tree.evict_front(new_front)
            for index in [i for i in model if i < new_front]:
                del model[index]
    return tree, model


@pytest.mark.parametrize("case_index", range(12))
def test_flatfat_range_queries_match_left_to_right_fold(case_index):
    rng = rng_for(0, "flatfat-ops", case_index)
    tree, model = _random_ops(rng, num_ops=rng.randint(10, 120))
    live = sorted(model)
    assert tree.size == len(live)
    for _ in range(30):
        lo = rng.randint(tree.front_index - 2, tree.back_index + 2)
        hi = rng.randint(lo, tree.back_index + 2)
        expected = _fold([model[i] for i in live if lo <= i < hi])
        assert tree.query(lo, hi) == expected
    assert tree.query_all() == _fold([model[i] for i in live])


@pytest.mark.parametrize("case_index", range(12))
def test_flatfat_incremental_equals_rebuild(case_index):
    rng = rng_for(0, "flatfat-rebuild", case_index)
    tree, model = _random_ops(rng, num_ops=rng.randint(10, 150))
    live = sorted(model)

    rebuilt = FlatFAT(ConcatAggregate(), initial_capacity=2)
    for _ in range(tree.front_index):  # realign absolute indices
        rebuilt.append(None)
    rebuilt.evict_front(tree.front_index)
    for index in live:
        appended = rebuilt.append(model[index])
        assert appended == index

    assert rebuilt.query_all() == tree.query_all()
    for _ in range(25):
        lo = rng.randint(tree.front_index, tree.back_index + 1)
        hi = rng.randint(lo, tree.back_index + 1)
        assert rebuilt.query(lo, hi) == tree.query(lo, hi)


def test_flatfat_growth_preserves_sum():
    tree = FlatFAT(SumAggregate(), initial_capacity=2)
    for value in range(100):
        tree.append(value)
    assert tree.query_all() == sum(range(100))
    tree.evict_front(90)
    assert tree.query_all() == sum(range(90, 100))


@pytest.mark.parametrize("case_index", range(8))
@pytest.mark.parametrize("eps", [0.5, 0.2, 0.05])
def test_exphist_estimate_within_relative_error_bound(case_index, eps):
    rng = rng_for(0, "exphist", str(eps), case_index)
    window = rng.randint(10, 300)
    histogram = ExponentialHistogram(window, eps=eps)
    timestamps = [ts for _, ts in generate_in_order_stream(
        rng, n=rng.randint(20, 400), max_gap=rng.choice([1, 4, 9]))]
    for position, ts in enumerate(timestamps):
        histogram.add(ts)
        now = ts
        exact = sum(1 for t in timestamps[:position + 1]
                    if now - window < t <= now)
        estimate = histogram.estimate(now)
        # Relative error bound, with +1 slack for the integer floor of
        # the half-bucket correction at tiny counts.
        assert abs(estimate - exact) <= eps * exact + 1, (
            "eps=%s window=%d now=%d exact=%d estimate=%d"
            % (eps, window, now, exact, estimate))


def test_exphist_space_stays_logarithmic():
    histogram = ExponentialHistogram(window=10_000, eps=0.1)
    for ts in range(5_000):
        histogram.add(ts)
    # At most k * (log2(N) + 1) buckets for N = 5000 events.
    assert histogram.num_buckets <= histogram.k * 14
