"""Property and differential battery for the columnar layer.

Three layers of evidence, each cheap enough to run per-commit:

* **Losslessness** (hypothesis): for arbitrary record batches, row ->
  columnar -> row and columnar -> wire bytes -> columnar -> row are
  exact identities whenever a schema is admitted at all -- and when no
  schema is admitted, that refusal is itself total (``None``), never a
  coerced batch.
* **Kernel differential** (hypothesis): a fused column kernel over a
  random stateless map/filter/flat-map chain produces exactly the rows
  the operators produce one record at a time.
* **Backend parity** (seeded oracle cases): the same windowed job run
  scalar, batched, multiprocess-over-pipes and multiprocess-over-shm
  produces identical window results -- the columnar exchange is
  observationally invisible.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.chaining import compile_column_chain
from repro.runtime.columnar import (
    batch_to_columnar,
    decode_columnar,
    encode_columnar,
    materialize_records,
)
from repro.runtime.elements import Record
from repro.runtime.engine import EngineConfig
from repro.runtime.operators import (
    FilterOperator,
    FlatMapOperator,
    MapOperator,
)
from repro.testing.oracles import (
    WindowedEquivalenceOracle,
    run_streaming_windows,
)
from repro.testing.seeds import rng_for

# -- strategies --------------------------------------------------------------

scalar_values = st.one_of(
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
    st.lists(st.integers(), max_size=3),
)
tuple_values = st.tuples(st.integers(), scalar_values)
timestamps = st.one_of(st.none(), st.integers(min_value=0, max_value=2 ** 40))
keys = st.one_of(st.none(), st.integers(min_value=0, max_value=99),
                 st.sampled_from(["a", "b", "c"]))


@st.composite
def record_batches(draw):
    size = draw(st.integers(min_value=1, max_value=40))
    homogeneous = draw(st.booleans())
    value_strategy = (draw(st.sampled_from([
        st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
        st.floats(allow_nan=False),
        st.text(max_size=8),
        tuple_values,
    ])) if homogeneous else scalar_values)
    return [Record(draw(value_strategy), draw(timestamps), key=draw(keys))
            for _ in range(size)]


# -- losslessness ------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(records=record_batches())
def test_columnar_roundtrip_is_lossless(records):
    batch = batch_to_columnar(records)
    if batch is None:
        return  # refusal is a valid (and total) outcome
    assert materialize_records(batch) == records
    decoded = decode_columnar(bytes(encode_columnar(batch)))
    assert decoded.schema == batch.schema
    assert materialize_records(decoded) == records
    # The element-level row view agrees too (and caches).
    assert decoded.records == records


@settings(max_examples=60, deadline=None)
@given(records=record_batches(), start=st.integers(0, 40),
       stop=st.integers(0, 40))
def test_columnar_slice_matches_row_slice(records, start, stop):
    batch = batch_to_columnar(records)
    if batch is None:
        return
    assert batch.slice(start, stop).records == records[start:stop]


# -- kernel differential -----------------------------------------------------

def _random_chain(rng):
    ops = []
    for index in range(rng.randint(1, 4)):
        choice = rng.randrange(3)
        if choice == 0:
            factor = rng.randint(-3, 3)
            ops.append(MapOperator(
                lambda v, f=factor: v * f + 1, name="map%d" % index))
        elif choice == 1:
            modulus = rng.randint(2, 5)
            ops.append(FilterOperator(
                lambda v, m=modulus: v % m != 0, name="filter%d" % index))
        else:
            repeat = rng.randint(0, 2)
            ops.append(FlatMapOperator(
                lambda v, r=repeat: [v + i for i in range(r)],
                name="flat%d" % index))
    return ops


@pytest.mark.parametrize("case_index", range(20))
def test_column_kernel_matches_row_application(case_index):
    rng = rng_for(23, "column-kernel", case_index)
    ops = _random_chain(rng)
    kernel, prefix = compile_column_chain(ops)
    assert kernel is not None and prefix == len(ops)
    records = [Record(rng.randint(-50, 50), ts, key=rng.randrange(3))
               for ts in range(rng.randint(1, 60))]

    def row_apply(record):
        pending = [record.value]
        for op in ops:
            emitted = []
            for value in pending:
                if isinstance(op, MapOperator):
                    emitted.append(op._fn(value))
                elif isinstance(op, FilterOperator):
                    if op._predicate(value):
                        emitted.append(value)
                else:
                    emitted.extend(op._fn(value))
            pending = emitted
        return [(v, record.timestamp, record.key) for v in pending]

    expected = [row for record in records for row in row_apply(record)]
    values, ts, ks = kernel([r.value for r in records],
                            [r.timestamp for r in records],
                            [r.key for r in records])
    assert list(zip(values, ts, ks)) == expected


# -- backend parity ----------------------------------------------------------

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.mark.skipif(not _HAS_FORK, reason="multiprocess requires fork")
@pytest.mark.parametrize("case_index", range(2))
def test_windowed_parity_scalar_batched_pipe_shm(case_index):
    """The full matrix on one oracle-generated job: cooperative scalar ==
    cooperative batched == multiprocess pipe == multiprocess shm."""
    oracle = WindowedEquivalenceOracle()
    rng = rng_for(29, "columnar-parity", case_index)
    case = oracle.generate(rng, 29, case_index)
    params = case.params

    def run(config):
        results, _ = run_streaming_windows(
            list(case.stream), params["assigner"], params["aggregate"],
            params["ooo_bound"], parallelism=2, config=config)
        return results

    scalar = run(EngineConfig())
    batched = run(EngineConfig(batch_size=16))
    pipe = run(EngineConfig(backend="multiprocess", num_workers=2,
                            batch_size=16, exchange="pipe"))
    shm = run(EngineConfig(backend="multiprocess", num_workers=2,
                           batch_size=16, exchange="shm",
                           exchange_slot_bytes=8192))
    assert batched == scalar, case.seed_line
    assert pipe == scalar, case.seed_line
    assert shm == scalar, case.seed_line
