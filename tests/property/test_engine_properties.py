"""Property-based tests for the engine and windowing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import StreamExecutionEnvironment
from repro.ml import ExponentialHistogram, SpaceSaving
from repro.windowing import (
    CountAggregate,
    EventTimeSessionWindows,
    SlidingEventTimeWindows,
    TumblingEventTimeWindows,
)

# A tiny algebra of element-wise transformations whose composition we can
# evaluate independently of the engine.
TRANSFORMS = {
    "inc": (lambda s: s.map(lambda x: x + 1), lambda xs: [x + 1 for x in xs]),
    "dbl": (lambda s: s.map(lambda x: x * 2), lambda xs: [x * 2 for x in xs]),
    "odd": (lambda s: s.filter(lambda x: x % 2 == 1),
            lambda xs: [x for x in xs if x % 2 == 1]),
    "dup": (lambda s: s.flat_map(lambda x: [x, x]),
            lambda xs: [x for v in xs for x in (v, v)]),
}


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(min_value=-50, max_value=50),
                       max_size=60),
       ops=st.lists(st.sampled_from(sorted(TRANSFORMS)), max_size=6),
       parallelism=st.integers(min_value=1, max_value=4),
       chaining=st.booleans())
def test_random_pipelines_match_python_semantics(values, ops, parallelism,
                                                 chaining):
    """Any composition of map/filter/flatMap over any parallelism and
    chaining setting produces exactly the multiset Python computes."""
    env = StreamExecutionEnvironment(parallelism=parallelism,
                                     chaining=chaining)
    stream = env.from_collection(values)
    expected = list(values)
    for op in ops:
        apply_stream, apply_list = TRANSFORMS[op]
        stream = apply_stream(stream)
        expected = apply_list(expected)
    result = stream.collect()
    env.execute()
    assert sorted(result.get()) == sorted(expected)


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                                 st.integers(min_value=0, max_value=1000)),
                       min_size=1, max_size=80),
       size=st.integers(min_value=1, max_value=50),
       parallelism=st.integers(min_value=1, max_value=3))
def test_tumbling_window_counts_partition_the_stream(values, size,
                                                     parallelism):
    """Every timestamped record lands in exactly one tumbling window:
    the window counts sum to the stream size, per key."""
    env = StreamExecutionEnvironment(parallelism=parallelism)
    result = (env.from_collection(values, timestamped=True)
              .key_by(lambda v: v)
              .window(TumblingEventTimeWindows.of(size))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    assert sum(r.value for r in result.get()) == len(values)


@settings(max_examples=25, deadline=None)
@given(timestamps=st.lists(st.integers(min_value=0, max_value=2000),
                           min_size=1, max_size=60),
       gap=st.integers(min_value=1, max_value=100))
def test_session_windows_cover_all_events_without_overlap(timestamps, gap):
    """Sessions partition each key's events; they never overlap and the
    per-session counts sum to the number of events."""
    values = [("k", ts) for ts in sorted(timestamps)]
    env = StreamExecutionEnvironment()
    result = (env.from_collection(values, timestamped=True)
              .key_by(lambda v: v[0])
              .window(EventTimeSessionWindows.with_gap(gap))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    sessions = sorted((r.window.start, r.window.end, r.value)
                      for r in result.get())
    assert sum(count for _, _, count in sessions) == len(values)
    for (s1, e1, _), (s2, e2, _) in zip(sessions, sessions[1:]):
        assert e1 <= s2  # strictly ordered, non-overlapping


@settings(max_examples=25, deadline=None)
@given(timestamps=st.lists(st.integers(min_value=0, max_value=500),
                           min_size=1, max_size=50),
       shape=st.tuples(st.integers(min_value=1, max_value=10),
                       st.integers(min_value=1, max_value=10)))
def test_sliding_windows_each_record_in_size_over_slide_windows(timestamps,
                                                                shape):
    multiplier, slide = shape
    size = slide * multiplier
    values = [("k", ts) for ts in timestamps]
    env = StreamExecutionEnvironment()
    result = (env.from_collection(values, timestamped=True)
              .key_by(lambda v: v[0])
              .window(SlidingEventTimeWindows.of(size, slide))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    # Each record is counted once per containing window: size/slide total.
    assert (sum(r.value for r in result.get())
            == len(values) * (size // slide))


@settings(max_examples=30, deadline=None)
@given(events=st.lists(st.integers(min_value=0, max_value=30),
                       min_size=1, max_size=300))
def test_spacesaving_never_underestimates_beyond_error(events):
    summary = SpaceSaving(capacity=8)
    truth = {}
    for key in events:
        summary.add(key)
        truth[key] = truth.get(key, 0) + 1
    for hitter in summary.top(8):
        true_count = truth.get(hitter.key, 0)
        assert hitter.count >= true_count >= hitter.guaranteed


@settings(max_examples=30, deadline=None)
@given(gaps=st.lists(st.integers(min_value=0, max_value=20),
                     min_size=1, max_size=200),
       window=st.integers(min_value=10, max_value=200))
def test_exponential_histogram_error_bound(gaps, window):
    histogram = ExponentialHistogram(window=window, eps=0.1)
    timestamps = []
    now = 0
    for gap in gaps:
        now += gap
        timestamps.append(now)
        histogram.add(now)
    true_count = sum(1 for ts in timestamps if ts > now - window)
    estimate = histogram.estimate(now)
    assert abs(estimate - true_count) <= max(1, 0.2 * true_count)
