"""Backfill differential property tests: the unified history->stream
path (``DataSet.then_stream`` / ``DataStream.with_history``) against the
brute-force reference over the concatenated record set.

The claims, per ISSUE 7:

* **zero seam gap / zero double-count** -- at randomized cutover
  offsets over out-of-order, duplicated and gappy streams, every input
  record is processed exactly once across the seam (window results equal
  the reference, and the engine's cutover report accounts for every
  record), for event-time, count and session windows;
* **backend parity** -- the same batteries hold on the multiprocess
  shared-nothing backend;
* **degenerate edges** -- empty history, empty stream, history entirely
  late against the stream's first watermark, and a bounded source ending
  mid-window neither crash nor lose records.
"""

import multiprocessing

import pytest

from repro.api import Environment
from repro.runtime.engine import EngineConfig
from repro.testing import reference
from repro.testing.oracles import (
    BackfillOracle,
    run_hybrid_windows,
    split_for_backfill,
)
from repro.testing.seeds import rng_for, root_seed
from repro.time.watermarks import WatermarkStrategy
from repro.windowing.assigners import (
    EventTimeSessionWindows,
    GlobalWindows,
    TumblingEventTimeWindows,
)
from repro.windowing.triggers import CountTrigger

ROOT = root_seed(default=0)  # REPRO_SEED overridable, default pinned

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


class _SumAgg:
    def create_accumulator(self):
        return 0

    def add(self, record, acc):
        return acc + record[1]

    def merge(self, a, b):
        return a + b

    def get_result(self, acc):
        return acc


def _results_dict(results):
    return {(r.key, r.window.start, r.window.end): r.value for r in results}


# -- seeded batteries --------------------------------------------------------

def test_backfill_oracle_battery_cooperative():
    """The acceptance battery: 20 seeds of randomized cutover offsets
    over OOO/dup/gap streams on the cooperative backend."""
    oracle = BackfillOracle()
    for index in range(20):
        rng = rng_for(ROOT, "backfill-battery", index)
        case = oracle.generate(rng, ROOT, index)
        mismatch = oracle.check(case)
        assert mismatch is None, "%s\n%s" % (case.seed_line, mismatch)


@pytest.mark.skipif(not HAS_FORK,
                    reason="multiprocess backend requires fork")
def test_backfill_oracle_battery_multiprocess():
    """The same battery on the multiprocess backend (smaller streams:
    each case pays process startup)."""
    oracle = BackfillOracle()
    checked = 0
    index = 0
    while checked < 20:
        rng = rng_for(ROOT, "backfill-battery-mp", index)
        case = oracle.generate(rng, ROOT, index)
        index += 1
        if len(case.stream) > 60:
            continue
        case.params["backend"] = "multiprocess"
        mismatch = oracle.check(case)
        assert mismatch is None, "%s\n%s" % (case.seed_line, mismatch)
        checked += 1


# -- explicit window families across the seam --------------------------------

def _split_elements(elements, cutover):
    history = [e for e in elements if e[2] <= cutover]
    live = [e for e in elements if e[2] > cutover]
    return history, live


@pytest.mark.parametrize("cutover_fraction", [0.1, 0.5, 0.9])
def test_event_time_windows_across_seam(cutover_fraction):
    rng = rng_for(ROOT, "event-time-seam", int(cutover_fraction * 10))
    elements = [("k%d" % rng.randint(0, 3), rng.randint(-5, 9),
                 max(0, t + rng.randint(-4, 4)))
                for t in range(0, 400, 3)]
    stamps = sorted(e[2] for e in elements)
    cutover = stamps[int(len(stamps) * cutover_fraction)]
    history, live = _split_elements(elements, cutover)
    expected = reference.keyed_windows({"kind": "tumbling", "size": 40},
                                       elements, "sum")
    got, env = run_hybrid_windows(history, live, cutover,
                                  {"kind": "tumbling", "size": 40},
                                  "sum", ooo_bound=4)
    assert got == expected
    rows = env.job_report()["cutover"]
    assert sum(r["history_emitted"] + r["stream_emitted"]
               for r in rows) == len(elements)
    assert all(r["history_skipped"] == 0 and r["stream_skipped"] == 0
               for r in rows)


def test_session_windows_across_seam_merge_boundary():
    """Sessions whose gap straddles the cutover must merge: a session
    open at the seam is carried into the stream phase, not fired early
    by the seam watermark."""
    gap = 30
    # One session per key crossing the seam: last history ts 100,
    # first live ts 120 < 100 + gap.
    history = [("a", 1, 10), ("a", 1, 25), ("a", 1, 100),
               ("b", 1, 90), ("b", 1, 100)]
    live = [("a", 1, 120), ("a", 1, 300),
            ("b", 1, 125), ("b", 1, 129)]
    elements = history + live
    expected = reference.keyed_windows({"kind": "session", "gap": gap},
                                       elements, "count")
    got, env = run_hybrid_windows(history, live, 110,
                                  {"kind": "session", "gap": gap},
                                  "count", ooo_bound=0)
    assert got == expected
    # the history record at 100 and the live record at 120 merged into
    # ONE session spanning the seam -- not fired early at the watermark
    assert got[("a", 100, 150)] == 2
    assert got[("b", 90, 159)] == 4


def test_count_windows_across_seam():
    """A count window partially filled by history completes with stream
    records: operator state crosses the seam intact."""
    size = 7
    history = [("k", v, v) for v in range(10)]       # 10 records
    live = [("k", v, v) for v in range(10, 30)]      # 20 records
    env = Environment(parallelism=1)
    collected = (env.read(history)
                 .then_stream(lambda: live)
                 .assign_timestamps_and_watermarks(
                     WatermarkStrategy.for_bounded_out_of_orderness(
                         lambda e: e[2], 0))
                 .key_by(lambda e: e[0])
                 .window(GlobalWindows())
                 .trigger(CountTrigger(size))
                 .aggregate(_SumAgg())
                 .collect())
    env.execute()
    values = sorted(r.value for r in collected.get())
    # arrival order is deterministic at parallelism 1: chunks of 7 over
    # values 0..29; the trailing partial window (2 records) never fires
    expected = sorted(sum(range(30)[i:i + size])
                      for i in range(0, 28, size))
    assert values == expected
    rows = env.job_report()["cutover"]
    assert sum(r["history_emitted"] + r["stream_emitted"]
               for r in rows) == 30


def test_with_history_symmetric_to_then_stream():
    history = [("k", 1, t) for t in range(0, 100, 5)]
    live = [("k", 1, t) for t in range(100, 200, 5)]
    spec = {"kind": "tumbling", "size": 25}
    expected = reference.keyed_windows(spec, history + live, "sum")

    env = Environment(parallelism=2)
    stream = env.from_source(lambda: live).with_history(
        env.read(history), cutover=99, timestamp_fn=lambda e: e[2])
    collected = (stream
                 .assign_timestamps_and_watermarks(
                     WatermarkStrategy.for_bounded_out_of_orderness(
                         lambda e: e[2], 2))
                 .key_by(lambda e: e[0])
                 .window(TumblingEventTimeWindows(25))
                 .aggregate(_SumAgg())
                 .collect())
    env.execute()
    assert _results_dict(collected.get()) == expected


def test_misplaced_records_skipped_exactly_once():
    """Records duplicated onto the wrong side of the cutover are dropped
    (and counted) by the watermark discipline -- no double-counting."""
    elements = [("k%d" % (t % 2), 1, t) for t in range(0, 200, 4)]
    history, live, cutover = split_for_backfill(elements, "watermark",
                                                0.5, 3)
    assert len(history) + len(live) == len(elements) + 6
    expected = reference.keyed_windows({"kind": "tumbling", "size": 40},
                                       elements, "count")
    got, env = run_hybrid_windows(history, live, cutover,
                                  {"kind": "tumbling", "size": 40},
                                  "count", ooo_bound=0)
    assert got == expected
    rows = env.job_report()["cutover"]
    assert sum(r["history_skipped"] for r in rows) == 3
    assert sum(r["stream_skipped"] for r in rows) == 3
    assert sum(r["history_emitted"] + r["stream_emitted"]
               for r in rows) == len(elements)


# -- degenerate edges --------------------------------------------------------

def test_empty_history_side():
    live = [("k", 1, t) for t in range(0, 60, 5)]
    expected = reference.keyed_windows({"kind": "tumbling", "size": 20},
                                       live, "sum")
    got, env = run_hybrid_windows([], live, None,
                                  {"kind": "tumbling", "size": 20},
                                  "sum", ooo_bound=0)
    assert got == expected
    rows = env.job_report()["cutover"]
    assert sum(r["history_emitted"] for r in rows) == 0
    assert sum(r["stream_emitted"] for r in rows) == len(live)


def test_empty_stream_side():
    history = [("k", 1, t) for t in range(0, 60, 5)]
    expected = reference.keyed_windows({"kind": "tumbling", "size": 20},
                                       history, "sum")
    got, env = run_hybrid_windows(history, [], 59,
                                  {"kind": "tumbling", "size": 20},
                                  "sum", ooo_bound=0)
    assert got == expected


def test_both_sides_empty():
    got, env = run_hybrid_windows([], [], None,
                                  {"kind": "tumbling", "size": 20},
                                  "sum", ooo_bound=0)
    assert got == {}


def test_history_entirely_late_vs_stream_first_watermark():
    """History whose event times all precede the stream by more than the
    watermark bound: the cutover discipline still delivers every history
    record (the seam watermark is emitted only *after* the history
    drained, so nothing is late at the seam)."""
    history = [("k", 1, t) for t in range(0, 20)]          # ts 0..19
    live = [("k", 1, t) for t in range(1000, 1020)]        # ts >= 1000
    elements = history + live
    expected = reference.keyed_windows({"kind": "tumbling", "size": 10},
                                       elements, "count")
    got, env = run_hybrid_windows(history, live, 19,
                                  {"kind": "tumbling", "size": 10},
                                  "count", ooo_bound=0)
    assert got == expected
    rows = env.job_report()["cutover"]
    assert sum(r["history_emitted"] for r in rows) == len(history)


def test_bounded_source_ending_mid_window():
    """History ends mid-window; the stream side completes the window.
    The window [40, 80) gets 4 records from history and 4 from live."""
    history = [("k", 1, t) for t in range(0, 60, 5)]       # ts 0..55
    live = [("k", 1, t) for t in range(60, 100, 5)]        # ts 60..95
    expected = reference.keyed_windows({"kind": "tumbling", "size": 80},
                                       history + live, "count")
    got, env = run_hybrid_windows(history, live, 59,
                                  {"kind": "tumbling", "size": 80},
                                  "count", ooo_bound=0)
    assert got == expected
    assert got[("k", 0, 80)] == 16  # 12 history + 4 live, one window


# -- composition guard rails -------------------------------------------------

def test_then_stream_rejects_transformed_dataset():
    env = Environment()
    mapped = env.read(range(10)).map(lambda x: x + 1)
    with pytest.raises(ValueError, match="untransformed source"):
        mapped.then_stream(lambda: range(10, 20))


def test_then_stream_rejects_consumed_source():
    env = Environment()
    data = env.read(range(10))
    data.map(lambda x: x + 1).collect()
    with pytest.raises(ValueError, match="already feeds"):
        data.then_stream(lambda: range(10, 20))


def test_cutover_requires_event_time():
    env = Environment()
    with pytest.raises(ValueError, match="event time"):
        env.read(range(10)).then_stream(lambda: range(10, 20), cutover=5)


def test_hybrid_rejects_cross_environment_sides():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError, match="different environment"):
        env1.read(range(5)).then_stream(env2.from_source(lambda: range(5)))


def test_cutover_downstream_of_operator_rejected_by_planner():
    from repro.plan.graph import GraphValidationError
    env = Environment()
    stream = env.read(range(5)).then_stream(lambda: range(5, 10))
    # force the cutover node downstream of another node
    node = stream.node
    other = env.graph.new_node("pre", lambda: None, 1, is_source=True)
    env.graph.add_edge(other.node_id, node.node_id,
                       stream._edge_partitioner(node.parallelism))
    stream.map(lambda x: x).collect()
    with pytest.raises(GraphValidationError, match="must be a source"):
        env.execute()


# -- shrunk repro regressions ------------------------------------------------

def test_shrunk_repro_single_key_session_at_seam():
    """ddmin-style minimal case: one key, one record per side.  Exactly
    ``gap`` apart the proto-windows touch and merge into one session
    across the seam; one tick further apart they stay separate."""
    gap = 10
    history = [("k", 1, 0)]
    for live_ts, sessions in ((10, 1), (11, 2)):
        live = [("k", 1, live_ts)]
        got, _ = run_hybrid_windows(history, live, 5,
                                    {"kind": "session", "gap": gap},
                                    "count", ooo_bound=0)
        expected = reference.keyed_windows({"kind": "session", "gap": gap},
                                           history + live, "count")
        assert got == expected
        assert len(got) == sessions


def test_shrunk_repro_duplicate_timestamp_on_cutover():
    """Records exactly at the cutover timestamp belong to history; a
    stream-side duplicate at ts == cutover must be skipped."""
    history = [("k", 1, 10), ("k", 1, 10)]
    live = [("k", 7, 10), ("k", 1, 11)]  # ts 10 <= cutover: dropped
    got, env = run_hybrid_windows(history, live, 10,
                                  {"kind": "tumbling", "size": 20},
                                  "sum", ooo_bound=0)
    assert got == {("k", 0, 20): 3}
    rows = env.job_report()["cutover"]
    assert sum(r["stream_skipped"] for r in rows) == 1
