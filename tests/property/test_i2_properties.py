"""Property-based tests for the I2 stack (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2 import M4Aggregator, pixel_error, render_line_chart

WIDTH, HEIGHT = 24, 18
T_MIN, T_MAX = 0.0, 100.0
V_MIN, V_MAX = -50.0, 50.0


@st.composite
def time_series(draw, max_points=120):
    count = draw(st.integers(min_value=1, max_value=max_points))
    timestamps = draw(st.lists(
        st.floats(min_value=T_MIN, max_value=T_MAX,
                  allow_nan=False, allow_infinity=False),
        min_size=count, max_size=count, unique=True))
    values = draw(st.lists(
        st.floats(min_value=V_MIN, max_value=V_MAX,
                  allow_nan=False, allow_infinity=False),
        min_size=count, max_size=count))
    return sorted(zip(timestamps, values))


def render(points):
    return render_line_chart(points, WIDTH, HEIGHT, T_MIN, T_MAX,
                             V_MIN, V_MAX)


@settings(max_examples=80, deadline=None)
@given(points=time_series())
def test_m4_is_pixel_exact_on_arbitrary_series(points):
    """The I2 correctness claim as a universal property: for ANY series,
    rendering the M4 reduction equals rendering the raw data."""
    aggregator = M4Aggregator(T_MIN, T_MAX, WIDTH)
    aggregator.insert_many(points)
    assert pixel_error(render(aggregator.points()), render(points)) == 0


@settings(max_examples=80, deadline=None)
@given(points=time_series())
def test_m4_transfer_bound_is_universal(points):
    aggregator = M4Aggregator(T_MIN, T_MAX, WIDTH)
    aggregator.insert_many(points)
    assert aggregator.tuples_retained <= 4 * WIDTH
    assert aggregator.tuples_retained <= 4 * len(points)


@settings(max_examples=50, deadline=None)
@given(points=time_series(), factor=st.sampled_from([2, 3, 4]))
def test_rescale_down_equals_direct_aggregation(points, factor):
    """Zoom-out exactness: merging fine columns equals aggregating at the
    coarse width directly (when widths divide)."""
    coarse_width = WIDTH
    fine_width = WIDTH * factor
    fine = M4Aggregator(T_MIN, T_MAX, fine_width)
    fine.insert_many(points)
    direct = M4Aggregator(T_MIN, T_MAX, coarse_width)
    direct.insert_many(points)
    assert fine.rescale(coarse_width).points() == direct.points()
