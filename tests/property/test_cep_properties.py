"""Property-based tests for CEP: the NFA against a brute-force matcher."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep import NFA, Pattern


def brute_force_matches(events, stage_kinds, within):
    """All strictly increasing index tuples matching a relaxed-contiguity
    pattern of kind-equality predicates."""
    matches = set()
    indices_by_kind = {}
    for kind in set(stage_kinds):
        indices_by_kind[kind] = [i for i, (k, _) in enumerate(events)
                                 if k == kind]
    for combo in itertools.combinations(range(len(events)),
                                        len(stage_kinds)):
        if any(events[index][0] != kind
               for index, kind in zip(combo, stage_kinds)):
            continue
        start_ts = events[combo[0]][1]
        end_ts = events[combo[-1]][1]
        if within is not None and end_ts - start_ts > within:
            continue
        matches.add(combo)
    return matches


@st.composite
def event_streams(draw, max_size=16):
    gaps = draw(st.lists(st.integers(min_value=0, max_value=20),
                         min_size=1, max_size=max_size))
    kinds = draw(st.lists(st.sampled_from("AB"), min_size=len(gaps),
                          max_size=len(gaps)))
    ts = 0
    events = []
    for kind, gap in zip(kinds, gaps):
        ts += gap
        events.append((kind, ts))
    return events


@settings(max_examples=60, deadline=None)
@given(events=event_streams(),
       stage_kinds=st.lists(st.sampled_from("AB"), min_size=1, max_size=3),
       within=st.one_of(st.none(), st.integers(min_value=1, max_value=60)))
def test_nfa_finds_exactly_the_brute_force_matches(events, stage_kinds,
                                                   within):
    pattern = Pattern.begin("s0", lambda e, k=stage_kinds[0]: e[0] == k)
    for index, kind in enumerate(stage_kinds[1:], start=1):
        pattern = pattern.followed_by("s%d" % index,
                                      lambda e, k=kind: e[0] == k)
    if within is not None:
        pattern = pattern.within(within)

    nfa = NFA(pattern)
    found = []
    for event in events:
        for match in nfa.advance(event, event[1]):
            # Recover the index tuple from the captured events: events
            # are unique objects only by (kind, ts) position; use ts plus
            # a stable disambiguation via identity over the list.
            found.append(tuple(match.events["s%d" % i]
                               for i in range(len(stage_kinds))))

    brute = brute_force_matches(events, stage_kinds, within)
    brute_events = {tuple(events[i] for i in combo) for combo in brute}
    # Compare as multisets of captured event tuples.
    from collections import Counter
    found_counter = Counter(found)
    brute_counter = Counter()
    for combo in brute:
        brute_counter[tuple(events[i] for i in combo)] += 1
    assert found_counter == brute_counter


@settings(max_examples=40, deadline=None)
@given(events=event_streams(max_size=20),
       within=st.integers(min_value=1, max_value=30))
def test_prune_never_loses_viable_matches(events, within):
    """Pruning with a watermark that never exceeds the newest event's
    timestamp is loss-free."""
    def build():
        return (Pattern.begin("a", lambda e: e[0] == "A")
                .followed_by("b", lambda e: e[0] == "B")
                .within(within))

    plain = NFA(build())
    pruned = NFA(build())
    plain_matches, pruned_matches = [], []
    for event in events:
        plain_matches.extend(plain.advance(event, event[1]))
        pruned_matches.extend(pruned.advance(event, event[1]))
        pruned.prune(event[1])  # watermark == latest event time
    assert len(plain_matches) == len(pruned_matches)
