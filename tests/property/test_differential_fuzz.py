"""Tier-1 differential fuzz pass: a small, fixed-seed slice of what the
nightly ``python -m repro.testing.fuzz`` job runs with a big budget.

Also tests the harness *itself*: the mutation smoke proves that a
deliberately corrupted strategy is caught, attributed by name, and
shrunk to a tiny repro (a fuzzer that cannot fail is worthless), and the
shrinker's minimization is checked against a synthetic oracle with a
known minimal failure.
"""

import random

import pytest

from repro.testing.fuzz import build_oracles, run_fuzz
from repro.testing.oracles import (
    DEFAULT_ORACLE_NAMES,
    Case,
    Oracle,
    make_oracle,
)
from repro.testing.seeds import derive_seed, rng_for, root_seed
from repro.testing.shrinker import format_repro, shrink

ROOT = root_seed(default=0)  # REPRO_SEED overridable, default pinned


@pytest.mark.parametrize("oracle_name", DEFAULT_ORACLE_NAMES)
def test_bounded_fuzz_pass_per_oracle(oracle_name):
    oracle = make_oracle(oracle_name)
    for index in range(8):
        rng = rng_for(ROOT, oracle.name, index)
        case = oracle.generate(rng, ROOT, index)
        mismatch = oracle.check(case)
        assert mismatch is None, "%s\n%s" % (case.seed_line, mismatch)


def test_fuzz_runner_green_on_main():
    report = run_fuzz(ROOT, build_oracles(list(DEFAULT_ORACLE_NAMES)),
                      budget_cases=15)
    assert report.ok, "\n\n".join(
        failure.detail for failure in report.failures)
    assert report.cases_run == 15
    assert set(report.per_oracle) == set(DEFAULT_ORACLE_NAMES)


def test_mutation_smoke_catches_and_attributes_corrupted_strategy():
    # Corrupting the lazy strategy's emitted values must produce a
    # shrunk failing case that names the strategy and the seed.
    report = run_fuzz(ROOT, build_oracles(["cutty"], mutate="lazy"),
                      budget_cases=10, max_failures=2)
    assert not report.ok
    failure = report.failures[0]
    assert "strategy=lazy" in failure.detail
    assert "seed=%d" % ROOT in failure.seed_line
    assert "oracle=cutty" in failure.seed_line
    # The emitted repro is a standalone pytest function; against the
    # UNMUTATED system it must pass (the injected bug isn't in main).
    namespace = {}
    exec(compile(failure.repro, "<repro>", "exec"), namespace)
    test_fn = next(value for name, value in namespace.items()
                   if name.startswith("test_shrunk_"))
    test_fn()


def test_mutation_smoke_shrinks_to_small_repro():
    mutated = make_oracle("cutty", mutate="lazy")
    clean = make_oracle("cutty")
    for index in range(10):
        rng = rng_for(ROOT, mutated.name, index)
        case = mutated.generate(rng, ROOT, index)
        detail = mutated.check(case)
        if detail is not None:
            break
    else:
        pytest.fail("mutated lazy strategy never diverged in 10 cases")
    shrunk = shrink(mutated, case, detail)
    assert len(shrunk.case.stream) <= 4  # tiny, not the raw random stream
    assert "strategy=lazy" in shrunk.detail
    assert mutated.check(shrunk.case) is not None
    assert clean.check(shrunk.case) is None


class _ThresholdOracle(Oracle):
    """Synthetic oracle with a known one-element minimal failure: fails
    iff any stream value exceeds 9."""

    name = "threshold"

    def generate(self, rng, root, index):
        stream = [(rng.randint(0, 20), ts) for ts in range(rng.randint(1, 40))]
        return Case(self.name, root, index, {}, stream)

    def check(self, case):
        bad = [value for value, _ in case.stream if value > 9]
        if bad:
            return "threshold exceeded: %r" % bad[:3]
        return None


def test_shrinker_minimizes_to_single_element():
    oracle = _ThresholdOracle()
    rng = random.Random(derive_seed(ROOT, "shrinker-unit"))
    case = None
    while case is None or oracle.check(case) is None:
        case = oracle.generate(rng, ROOT, 0)
    detail = oracle.check(case)
    result = shrink(oracle, case, detail)
    assert len(result.case.stream) == 1
    assert result.case.stream[0][0] > 9
    assert "threshold exceeded" in result.detail


def test_shrinker_zeroes_irrelevant_values():
    oracle = _ThresholdOracle()
    case = Case(oracle.name, ROOT, 0, {}, [(3, 0), (15, 1)])
    result = shrink(oracle, case, oracle.check(case))
    assert result.case.stream == [(15, 1)]


def test_format_repro_is_valid_python():
    oracle = _ThresholdOracle()
    case = Case("cutty", 7, 3, {"aggregate": "sum"}, [(1, 2)])
    snippet = format_repro(case, "some failure\nmore detail")
    compile(snippet, "<repro>", "exec")
    assert "seed=7 oracle=cutty case=3" in snippet
    assert "test_shrunk_cutty_seed7_case3" in snippet


def test_seed_derivation_is_stable_across_runs():
    # Bit-reproducibility contract: documented constants, not hash().
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a", 1) != derive_seed(0, "a", "1")
    assert rng_for(0, "x").random() == rng_for(0, "x").random()
