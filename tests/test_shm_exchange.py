"""Unit tests for the shared-memory exchange: the SPSC ring itself, the
dual-transport :class:`ExchangeWriter`, and the receiver's seq-merge.

Everything here runs single-process -- the ring is just shared pages,
so a writer and reader in one process exercise the exact slot protocol
the forked fleet uses (minus the memory-ordering question, which only
an architecture can answer; see the module docstring of
``repro.runtime.shm``).
"""

import os

import pytest

from repro.runtime.columnar import batch_to_columnar, decode_columnar
from repro.runtime.elements import (
    END_OF_STREAM,
    Record,
    RecordBatch,
    Watermark,
)
from repro.runtime.multiprocess import ExchangeWriter, _FrameReader, _FrameWriter
from repro.runtime.shm import (
    RingError,
    ShmRing,
    ShmRingReader,
    ShmRingWriter,
)


def make_pipe():
    read_fd, write_fd = os.pipe()
    return (_FrameReader(read_fd, peer="test pipe"), _FrameWriter(write_fd))


class TestShmRing:
    def test_wraparound_preserves_order(self):
        ring = ShmRing(slot_count=4, slot_bytes=64)
        writer, reader = ShmRingWriter(ring), ShmRingReader(ring)
        seq = 0
        seen = []
        for _ in range(5):  # 15 frames through a 4-slot ring
            for _ in range(3):
                assert writer.try_write(seq, seq % 7, 1, b"p%d" % seq)
                seq += 1
            for got_seq, ordinal, records, payload in reader.read_available():
                assert ordinal == got_seq % 7
                assert payload == b"p%d" % got_seq
                seen.append(got_seq)
        assert seen == list(range(15))
        ring.close()

    def test_full_ring_rejects_until_drained(self):
        ring = ShmRing(slot_count=2, slot_bytes=16)
        writer, reader = ShmRingWriter(ring), ShmRingReader(ring)
        assert writer.try_write(0, 0, 1, b"a")
        assert writer.try_write(1, 0, 1, b"b")
        assert not writer.try_write(2, 0, 1, b"c")  # full
        assert [f[3] for f in reader.read_available()] == [b"a", b"b"]
        assert writer.try_write(2, 0, 1, b"c")
        ring.close()

    def test_occupancy_is_record_denominated(self):
        ring = ShmRing(slot_count=4, slot_bytes=16)
        writer, reader = ShmRingWriter(ring), ShmRingReader(ring)
        assert writer.occupancy_records() == 0
        writer.try_write(0, 0, 10, b"a")
        writer.try_write(1, 0, 32, b"b")
        assert writer.occupancy_records() == 42
        reader.read_available()
        assert writer.occupancy_records() == 0
        ring.close()

    def test_trampled_state_byte_raises(self):
        ring = ShmRing(slot_count=2, slot_bytes=16)
        reader = ShmRingReader(ring, peer="trampled")
        ring.buf[0] = 99
        with pytest.raises(RingError, match="trampled"):
            reader.read_available()
        ring.close()

    def test_trampled_length_raises(self):
        ring = ShmRing(slot_count=2, slot_bytes=16)
        writer, reader = ShmRingWriter(ring), ShmRingReader(ring)
        writer.try_write(0, 0, 1, b"a")
        ring.buf[8:12] = (1 << 20).to_bytes(4, "little")
        with pytest.raises(RingError):
            reader.read_available()
        ring.close()

    def test_rejects_degenerate_slot_count(self):
        with pytest.raises(ValueError):
            ShmRing(slot_count=1, slot_bytes=64)


class TestExchangeWriter:
    def drain(self, reader, writer):
        writer.pipe.drain()
        return reader.read_available()

    def test_pipe_mode_keeps_legacy_frames(self):
        reader, pipe = make_pipe()
        exchange = ExchangeWriter(pipe, ring=None)
        batch = RecordBatch([Record(1, 0), Record(2, 1)])
        exchange.send(3, batch)
        exchange.send(3, Watermark(5))
        frames = self.drain(reader, exchange)
        assert frames == [(3, batch), (3, Watermark(5))]
        assert exchange.stats["pipe_frames"] == 2
        assert exchange.stats["pipe_records"] == 2
        assert exchange.stats["control_frames"] == 1
        assert exchange.stats["shm_frames"] == 0

    def test_shm_mode_routes_batches_to_ring_and_control_to_pipe(self):
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=4, slot_bytes=4096)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        ring_reader = ShmRingReader(ring)
        batch = RecordBatch([Record(i, i) for i in range(5)])
        exchange.send(2, batch)            # seq 0 -> ring
        exchange.send(2, Watermark(9))     # seq 1 -> pipe
        exchange.send(2, END_OF_STREAM)    # seq 2 -> pipe
        pipe_frames = self.drain(reader, exchange)
        assert [(s, o) for s, o, _ in pipe_frames] == [(1, 2), (2, 2)]
        ((seq, ordinal, records, payload),) = ring_reader.read_available()
        assert (seq, ordinal, records) == (0, 2, 5)
        assert decode_columnar(payload).records == batch.records
        assert exchange.stats["shm_frames"] == 1
        assert exchange.stats["shm_records"] == 5
        assert exchange.stats["control_frames"] == 2
        assert exchange.stats["pickle_fallbacks"] == 0
        ring.close()

    def test_unschematizable_batch_falls_back_to_pipe(self):
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=4, slot_bytes=4096)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        batch = RecordBatch([Record([1, 2], 0)])  # list value: no schema
        exchange.send(0, batch)
        ((seq, ordinal, element),) = self.drain(reader, exchange)
        assert (seq, ordinal, element) == (0, 0, batch)
        assert exchange.stats["fallback_unschematizable"] == 1
        assert exchange.stats["pickle_fallbacks"] == 1
        ring.close()

    def test_oversize_batch_falls_back_to_pipe(self):
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=4, slot_bytes=4096)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        batch = RecordBatch([Record("x" * 100, i) for i in range(100)])
        exchange.send(0, batch)
        assert len(self.drain(reader, exchange)) == 1
        assert exchange.stats["fallback_oversize"] == 1
        ring.close()

    def test_full_ring_falls_back_to_pipe_without_blocking(self):
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=2, slot_bytes=4096)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        for i in range(4):
            exchange.send(0, RecordBatch([Record(i, i)]))
        assert exchange.stats["shm_frames"] == 2
        assert exchange.stats["fallback_ring_full"] == 2
        assert len(self.drain(reader, exchange)) == 2
        assert exchange.occupancy_records() == 2
        ring.close()

    def test_columnar_batch_is_forwarded_without_rematerialization(self):
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=4, slot_bytes=4096)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        batch = batch_to_columnar([Record(i, i) for i in range(3)])
        exchange.send(1, batch)
        ((_, _, _, payload),) = ShmRingReader(ring).read_available()
        assert decode_columnar(payload).records == batch.records
        ring.close()

    def test_decoded_columnar_fallback_is_repickleable(self):
        # A decoded batch's memoryview columns defeat pickle; the
        # fallback path must ship the row twin instead.
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=2, slot_bytes=65536)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        source = batch_to_columnar([Record(i, i) for i in range(3)])
        import pickle

        from repro.runtime.columnar import encode_columnar
        decoded = decode_columnar(bytes(encode_columnar(source)))
        with pytest.raises(Exception):
            pickle.dumps(decoded)
        # Fill the ring so the columnar batch is forced onto the pipe.
        exchange.send(0, RecordBatch([Record(0, 0)]))
        exchange.send(0, RecordBatch([Record(1, 1)]))
        exchange.send(0, decoded)
        frames = self.drain(reader, exchange)
        assert frames[-1][2].records == decoded.records
        ring.close()


class TestSeqMerge:
    def test_interleaved_transports_reassemble_in_seq_order(self):
        """Frames split across ring and pipe must be delivered to the
        ingress channels in exactly the sender's emission order."""
        from repro.runtime.engine import EngineConfig
        reader, pipe = make_pipe()
        ring = ShmRing(slot_count=8, slot_bytes=4096)
        exchange = ExchangeWriter(pipe, ShmRingWriter(ring))
        ring_reader = ShmRingReader(ring)

        emitted = []
        for i in range(6):
            if i % 2 == 0:
                element = RecordBatch([Record(i, i)])
            else:
                element = Watermark(i)
            emitted.append(element)
            exchange.send(0, element)
        exchange.pipe.drain()

        # Replay the receiver's merge exactly as pump_ingress does.
        pending = {}
        for seq, ordinal, element in reader.read_available():
            pending[seq] = element
        for seq, ordinal, records, payload in ring_reader.read_available():
            pending[seq] = decode_columnar(payload)
        delivered = []
        next_seq = 0
        while next_seq in pending:
            delivered.append(pending.pop(next_seq))
            next_seq += 1
        assert next_seq == 6 and not pending
        for got, sent in zip(delivered, emitted):
            if sent.is_batch:
                assert got.records == sent.records
            else:
                assert got == sent
        ring.close()
