"""Tests for shared arrangements: the multiversioned index, its operator
lifecycle, the optimizer rewrite, and end-to-end sharing parity."""

import pytest

from repro.api import Environment
from repro.runtime.engine import EngineConfig
from repro.runtime.task import ArrangeOperator
from repro.state import (
    Arrangement,
    ShardedArrangement,
    VersionCompactedError,
)
from repro.table import Table, make_table
from repro.table.optimizer import optimize, rewrite_shared_arrangements
from repro.table.plan import ArrangementScan

ORDERS = [
    {"user": "alice", "amount": 30.0, "country": "de", "ts": 10},
    {"user": "bob", "amount": 5.0, "country": "fr", "ts": 20},
    {"user": "alice", "amount": 20.0, "country": "de", "ts": 1050},
    {"user": "carol", "amount": 50.0, "country": "de", "ts": 1100},
    {"user": "bob", "amount": 15.0, "country": "fr", "ts": 2200},
]

USERS = [
    {"user": "alice", "tier": "gold"},
    {"user": "bob", "tier": "silver"},
    {"user": "carol", "tier": "gold"},
]


def rows_of(result):
    return sorted(result.get(), key=repr)


def make_rows(n, num_keys=7):
    return [{"user": "u%d" % (i % num_keys), "amount": float(i % 23),
             "ts": i * 10} for i in range(n)]


# -- the multiversioned index itself ------------------------------------------

class TestArrangement:
    def test_versions_are_snapshots(self):
        arr = Arrangement("a", ("k",))
        arr.insert(("x",), {"k": "x", "v": 1})
        arr.seal(10)
        arr.insert(("x",), {"k": "x", "v": 2})
        arr.insert(("y",), {"k": "y", "v": 3})
        arr.seal(20)
        handle = arr.attach()
        handle.advance_to(20)
        assert arr.version_for(10) == 1
        assert arr.version_for(15) == 1
        assert arr.version_for(20) == 2
        at_10 = handle.read_at(10)
        assert at_10 == {("x",): [{"k": "x", "v": 1}]}
        at_20 = handle.read_at(20)
        assert sorted(at_20) == [("x",), ("y",)]
        assert at_20[("x",)] == [{"k": "x", "v": 1}, {"k": "x", "v": 2}]

    def test_timestamps_before_first_seal_read_empty(self):
        arr = Arrangement("a", ("k",))
        arr.insert(("x",), {"k": "x"})
        arr.seal(10)
        handle = arr.attach()
        assert handle.read_at(5) == {}

    def test_compaction_respects_reader_low_watermark(self):
        arr = Arrangement("a", ("k",))
        slow = arr.attach()
        for i in range(6):
            arr.insert(("x",), {"k": "x", "v": i})
            arr.seal((i + 1) * 10)
        fast = arr.attach()
        fast.advance_to(60)
        # slow never advanced: its low watermark pins compaction at zero.
        arr.compact()
        assert arr.compacted_through == 0
        assert arr.version_count >= 6
        slow.advance_to(30)
        arr.compact()
        assert arr.compacted_through == 3  # the version sealed at ts=30
        # reads at and above the frontier still work, below it raise.
        assert len(fast.read_at(30)[("x",)]) == 3
        with pytest.raises(VersionCompactedError):
            fast.read_at(10)
        slow.detach()
        fast.advance_to(60)
        arr.compact()
        assert arr.compacted_through == 6
        assert arr.version_count == 0  # everything folded into the base
        assert arr.compaction_lag == 0

    def test_flat_version_count_under_steady_watermark(self):
        """A reader that keeps up lets periodic compaction hold the
        number of live versions flat -- the bounded-memory claim."""
        arr = Arrangement("a", ("k",), compaction_interval=4)
        handle = arr.attach()
        peak = 0
        for i in range(200):
            arr.insert(("k%d" % (i % 5),), {"k": "k%d" % (i % 5), "v": i})
            arr.seal((i + 1) * 10)
            handle.advance_to((i + 1) * 10)
            if i % 4 == 3:
                arr.compact()
            peak = max(peak, arr.version_count)
        assert peak <= 8
        assert arr.compactions >= 40
        assert arr.stats()["rows"] == 200

    def test_reader_accounting(self):
        arr = Arrangement("a", ("k",))
        h1, h2 = arr.attach(), arr.attach()
        assert arr.stats()["readers"] == 2
        assert arr.stats()["readers_peak"] == 2
        h1.detach()
        h1.detach()  # idempotent
        assert arr.stats()["readers"] == 1
        assert arr.stats()["readers_total"] == 2
        h2.detach()
        assert arr.stats()["readers"] == 0

    def test_snapshot_restore_round_trip(self):
        arr = Arrangement("a", ("k",), compaction_interval=2)
        handle = arr.attach()
        for i in range(8):
            arr.insert(("x",), {"k": "x", "v": i})
            arr.seal((i + 1) * 10)
        handle.advance_to(40)
        arr.compact()
        state = arr.snapshot()

        other = Arrangement("a", ("k",))
        restored_handle = other.attach()
        other.restore(state)
        assert other.sealed == arr.sealed
        assert other.compacted_through == arr.compacted_through
        assert other.read_rows(other.version_for(80)) == \
            arr.read_rows(arr.version_for(80))
        # a surviving handle is clamped into the restored valid range
        assert (other.compacted_through <= restored_handle.low_watermark
                <= other.sealed)

    def test_sharded_stats_aggregate(self):
        sharded = ShardedArrangement("a", ("k",), parallelism=2)
        sharded.shard(0).insert(("x",), {"k": "x"})
        sharded.shard(1).insert(("y",), {"k": "y"})
        stats = sharded.stats()
        assert stats["shards"] == 2
        assert stats["rows"] == 2
        assert stats["distinct_keys"] == 2


class TestArrangeOperatorReset:
    def test_open_resets_dirty_shard(self):
        """Scratch restarts re-run open(); a shard left over from the
        failed attempt must not leak rows or stale handles into it."""
        sharded = ShardedArrangement("a", ("k",), parallelism=1)
        shard = sharded.shard(0)
        shard.insert(("x",), {"k": "x"})
        shard.seal(10)
        stale = shard.attach()

        class _Ctx:
            subtask_index = 0

        op = ArrangeOperator(sharded, lambda row: (row["k"],), name="a")
        op.open(_Ctx())
        assert shard.stats()["rows"] == 0
        assert shard.stats()["readers"] == 0
        assert not stale.attached


# -- the optimizer rewrite ----------------------------------------------------

class TestArrangementRewrite:
    def test_group_by_rewrites_to_arrangement_scan(self):
        env = Environment()
        table = env.table(ORDERS).group_by("user").agg(
            revenue=("sum", "amount"))
        ops = table.optimized_plan(share_arrangements=True)
        assert isinstance(ops[0], ArrangementScan)
        assert ops[0].kind == "group"
        assert ops[0].keys == ("user",)

    def test_identical_prefixes_share_a_fingerprint(self):
        env = Environment()
        t = env.table(ORDERS)
        a = (t.where(lambda r: r["amount"] > 0, reads=("amount",))
             .group_by("user").agg(n=("count", None)))
        b = (t.where(lambda r: r["amount"] > 0, reads=("amount",))
             .group_by("user").agg(total=("sum", "amount")))
        ops_a = a.optimized_plan(share_arrangements=True)
        ops_b = b.optimized_plan(share_arrangements=True)
        assert ops_a[0].fingerprint == ops_b[0].fingerprint

    def test_windowed_plans_are_not_rewritten(self):
        env = Environment()
        from repro.table import Tumble
        table = (env.table(ORDERS, time_column="ts")
                 .window(Tumble("ts", size=1000)).group_by("user")
                 .agg(n=("count", None)))
        ops = table.optimized_plan(share_arrangements=True)
        assert not any(isinstance(op, ArrangementScan) for op in ops)

    def test_rewrite_preserves_plain_plans(self):
        env = Environment()
        table = env.table(ORDERS).select("user", "amount")
        ops = table.optimized_plan(share_arrangements=True)
        assert not any(isinstance(op, ArrangementScan) for op in ops)


# -- end-to-end sharing parity ------------------------------------------------

class TestSharedQueryParity:
    def _run_group_queries(self, share, parallelism=2):
        env = Environment(
            parallelism=parallelism,
            config=EngineConfig(share_arrangements=share,
                                arrangement_compaction_interval=4))
        t = env.table(make_rows(120), time_column="ts")
        results = [
            t.group_by("user").agg(revenue=("sum", "amount")).collect(),
            t.group_by("user").agg(n=("count", None)).collect(),
            t.group_by("user").agg(biggest=("max", "amount")).collect(),
        ]
        env.execute()
        return [rows_of(result) for result in results], env

    def test_group_by_sharing_matches_independent(self):
        shared, env = self._run_group_queries(share=True)
        independent, _ = self._run_group_queries(share=False)
        assert shared == independent
        report = env.job_report().get("arrangements")
        assert report, "sharing enabled but no arrangements section"
        assert max(row["readers_peak"] for row in report) == 3
        assert all(row["compacted_through"] <= row["sealed"]
                   for row in report)

    def _run_join_queries(self, share):
        env = Environment(
            parallelism=2,
            config=EngineConfig(share_arrangements=share))
        left = env.table(ORDERS)
        right = env.table(USERS)
        results = [
            left.join(right, on=("user",)).collect(),
            left.where(lambda r: r["amount"] > 10, reads=("amount",))
                .join(right, on=("user",)).collect(),
        ]
        env.execute()
        return [rows_of(result) for result in results], env

    def test_join_sharing_matches_independent(self):
        shared, env = self._run_join_queries(share=True)
        independent, _ = self._run_join_queries(share=False)
        assert shared == independent
        report = env.job_report().get("arrangements")
        assert report
        # both join queries read the one arrangement over USERS
        assert {row["arrangement"] for row in report} == \
            {report[0]["arrangement"]}
        assert max(row["readers_total"] for row in report) == 2

    def test_many_queries_few_arrangements(self):
        """The acceptance shape: hundreds of concurrent queries served
        by a handful of arrangements, byte-identical to independent
        runs, with the source scanned once per arrangement rather than
        once per query."""
        num_queries = 256
        rows = make_rows(300)
        aggs = [("revenue", ("sum", "amount")), ("n", ("count", None)),
                ("lo", ("min", "amount")), ("hi", ("max", "amount"))]

        def build(env):
            t = env.table(rows, time_column="ts")
            results = []
            for q in range(num_queries):
                name, spec = aggs[q % len(aggs)]
                key = ("user",) if q % 2 == 0 else ("user", "amount")
                results.append(
                    t.group_by(*key).agg(**{name: spec}).collect())
            return results

        shared_env = Environment(
            config=EngineConfig(share_arrangements=True,
                                arrangement_compaction_interval=8))
        shared_results = build(shared_env)
        shared_env.execute()
        shared = [rows_of(r) for r in shared_results]

        indep_env = Environment(
            config=EngineConfig(share_arrangements=False))
        indep_results = build(indep_env)
        indep_env.execute()
        independent = [rows_of(r) for r in indep_results]

        assert shared == independent
        report = shared_env.job_report()["arrangements"]
        names = {row["arrangement"] for row in report}
        assert len(names) <= 4
        assert sum(row["readers_peak"] for row in report) == num_queries
        # the shared plan routes every row through one arrange operator
        # per arrangement; the independent plan re-processes the input
        # once per query -- a >=3x logical-work gap.
        def records_processed(env):
            return sum(op["records_in"]
                       for op in env.job_report()["operators"])
        assert (records_processed(indep_env)
                >= 3 * records_processed(shared_env))


class TestCrashRestore:
    def _run(self, tmp_path, crash):
        hook = None
        state = {"fired": False}
        if crash:
            def hook(engine, rounds):  # noqa: ANN001 - engine hook shape
                if state["fired"] or len(engine.checkpoint_store) < 1:
                    return False
                for task in engine.tasks:
                    for row in task.operator_reports("arrangement_report"):
                        if row["compactions"] >= 1:
                            state["fired"] = True
                            return True
                return False

        config = EngineConfig(
            share_arrangements=True,
            arrangement_compaction_interval=2,
            checkpoint_interval_ms=5,
            elements_per_step=4,
            checkpoint_dir=str(tmp_path / ("crash" if crash else "clean")),
            failure_hook=hook)
        env = Environment(parallelism=2, config=config)
        t = env.table(make_rows(160), time_column="ts")
        results = [
            t.group_by("user").agg(revenue=("sum", "amount")).collect(),
            t.group_by("user").agg(n=("count", None)).collect(),
        ]
        env.execute()
        return [rows_of(r) for r in results], env, state

    def test_restore_mid_compaction_matches_clean_run(self, tmp_path):
        clean, _, _ = self._run(tmp_path, crash=False)
        replayed, env, state = self._run(tmp_path, crash=True)
        assert state["fired"], "crash hook never fired mid-compaction"
        assert replayed == clean
        report = env.job_report()["arrangements"]
        assert report
        for row in report:
            assert row["compacted_through"] <= row["sealed"]


class TestMultiprocessParity:
    def test_shared_arrangements_on_multiprocess_backend(self):
        """Fork-inherited shards stay process-local (same-index subtasks
        are co-located), so sharing holds across worker processes."""
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("multiprocess backend needs fork")

        def run(share):
            env = Environment(parallelism=2, config=EngineConfig(
                backend="multiprocess", num_workers=2,
                share_arrangements=share))
            t = env.table(make_rows(60))
            results = [
                t.group_by("user").agg(total=("sum", "amount")).collect(),
                t.group_by("user").agg(n=("count", None)).collect(),
            ]
            env.execute()
            return [rows_of(r) for r in results], env

        shared, env = run(True)
        independent, _ = run(False)
        assert shared == independent
        report = env.job_report().get("arrangements")
        assert report  # federated from the workers
        assert {row["subtask"] for row in report} == {0, 1}


# -- the environment-level table API ------------------------------------------

class TestEnvironmentTableApi:
    def test_env_table_builds_a_table(self):
        env = Environment()
        result = env.table(ORDERS).group_by("country").agg(
            n=("count", None)).collect()
        env.execute()
        by_country = {row["country"]: row["n"] for row in result.get()}
        assert by_country == {"de": 3, "fr": 2}

    def test_env_table_accepts_iterables(self):
        env = Environment()
        table = env.table(iter(ORDERS))
        assert table.columns == ("user", "amount", "country", "ts")

    def test_env_table_time_column(self):
        env = Environment()
        table = env.table(ORDERS, time_column="ts")
        assert table._time_column == "ts"

    def test_register_and_catalog(self):
        env = Environment()
        orders = env.table(ORDERS)
        assert env.register_table("orders", orders) is orders
        assert env.table_catalog() == {"orders": orders}
        # the catalog dict is a copy
        env.table_catalog()["other"] = None
        assert set(env.table_catalog()) == {"orders"}

    def test_register_rejects_foreign_tables(self):
        env, other = Environment(), Environment()
        orders = env.table(ORDERS)
        with pytest.raises(ValueError):
            other.register_table("orders", orders)
        with pytest.raises(TypeError):
            env.register_table("nope", [1, 2, 3])

    def test_from_rows_is_deprecated_but_works(self):
        env = Environment()
        with pytest.warns(DeprecationWarning):
            table = Table.from_rows(env, ORDERS)
        assert table.columns == ("user", "amount", "country", "ts")

    def test_make_table_matches_env_table(self):
        env = Environment()
        assert make_table(env, ORDERS).columns == \
            env.table(ORDERS).columns


class TestEngineConfigKnobs:
    def test_share_arrangements_defaults_on(self):
        config = EngineConfig()
        assert config.share_arrangements is True
        assert config.arrangement_compaction_interval == 8

    def test_did_you_mean_for_typoed_knob(self):
        with pytest.raises(TypeError) as excinfo:
            EngineConfig(share_arrangments=True)
        assert "share_arrangements" in str(excinfo.value)

    def test_compaction_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineConfig(arrangement_compaction_interval=0)
