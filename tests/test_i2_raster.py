"""Unit tests for the raster model and line renderer."""

import pytest

from repro.i2.raster import (
    Raster,
    pixel_error,
    pixel_error_rate,
    render_line_chart,
)


class TestCoordinateMapping:
    def test_column_buckets_are_half_open(self):
        raster = Raster(10, 10, 0, 100, 0, 1)
        assert raster.column_of(0) == 0
        assert raster.column_of(9.99) == 0
        assert raster.column_of(10) == 1
        assert raster.column_of(100) == 9  # right edge joins last column

    def test_out_of_range_timestamp_rejected(self):
        raster = Raster(10, 10, 0, 100, 0, 1)
        with pytest.raises(ValueError):
            raster.column_of(101)

    def test_values_clamped_to_rows(self):
        raster = Raster(10, 10, 0, 100, 0, 1)
        assert raster.row_of(-5) == 0
        assert raster.row_of(5) == 9

    def test_column_time_bounds_roundtrip(self):
        raster = Raster(10, 10, 0, 100, 0, 1)
        lo, hi = raster.column_time_bounds(3)
        assert (lo, hi) == (30, 40)
        assert raster.column_of(lo) == 3
        assert raster.column_of(hi - 0.01) == 3

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Raster(0, 10, 0, 1, 0, 1)
        with pytest.raises(ValueError):
            Raster(10, 10, 5, 5, 0, 1)
        with pytest.raises(ValueError):
            Raster(10, 10, 0, 1, 1, 1)


class TestBresenham:
    def test_horizontal_line(self):
        raster = Raster(10, 10, 0, 10, 0, 10)
        raster._bresenham(0, 5, 9, 5)
        assert raster.pixels == {(x, 5) for x in range(10)}

    def test_vertical_line(self):
        raster = Raster(10, 10, 0, 10, 0, 10)
        raster._bresenham(3, 0, 3, 9)
        assert raster.pixels == {(3, y) for y in range(10)}

    def test_diagonal(self):
        raster = Raster(10, 10, 0, 10, 0, 10)
        raster._bresenham(0, 0, 9, 9)
        assert raster.pixels == {(i, i) for i in range(10)}

    def test_single_point(self):
        raster = Raster(10, 10, 0, 10, 0, 10)
        raster._bresenham(4, 4, 4, 4)
        assert raster.pixels == {(4, 4)}

    def test_line_is_8_connected(self):
        raster = Raster(100, 100, 0, 100, 0, 100)
        raster._bresenham(3, 7, 91, 64)
        pixels = sorted(raster.pixels)
        for (x0, y0), (x1, y1) in zip(pixels, pixels[1:]):
            assert abs(x1 - x0) <= 1 and abs(y1 - y0) <= 1 or x1 == x0


class TestRenderAndError:
    def test_render_sorts_points(self):
        chart_a = render_line_chart([(0, 0), (50, 5), (100, 0)],
                                    10, 10, 0, 100, 0, 10)
        chart_b = render_line_chart([(100, 0), (0, 0), (50, 5)],
                                    10, 10, 0, 100, 0, 10)
        assert chart_a.pixels == chart_b.pixels

    def test_single_point_series(self):
        chart = render_line_chart([(50, 5)], 10, 10, 0, 100, 0, 10)
        assert chart.pixels == {(5, 5)}

    def test_pixel_error_symmetric_difference(self):
        a = Raster(4, 4, 0, 1, 0, 1)
        b = Raster(4, 4, 0, 1, 0, 1)
        a.pixels = {(0, 0), (1, 1)}
        b.pixels = {(1, 1), (2, 2)}
        assert pixel_error(a, b) == 2
        assert pixel_error_rate(a, b) == 1.0

    def test_error_requires_same_dimensions(self):
        with pytest.raises(ValueError):
            pixel_error(Raster(4, 4, 0, 1, 0, 1), Raster(5, 4, 0, 1, 0, 1))

    def test_identical_rasters_have_zero_error(self):
        points = [(t, (t * 7) % 13) for t in range(100)]
        a = render_line_chart(points, 20, 15, 0, 100, 0, 13)
        b = render_line_chart(points, 20, 15, 0, 100, 0, 13)
        assert pixel_error(a, b) == 0
