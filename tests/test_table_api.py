"""Tests for the Table layer: semantics, optimizer rules, equivalence."""

import random

import pytest

from repro.api import StreamExecutionEnvironment
from repro.table import Table, Tumble, Slide, Session
from repro.table.plan import Scan, Select, Where
from repro.table.optimizer import optimize

ORDERS = [
    {"user": "alice", "amount": 30.0, "country": "de", "ts": 10},
    {"user": "bob", "amount": 5.0, "country": "fr", "ts": 20},
    {"user": "alice", "amount": 20.0, "country": "de", "ts": 1050},
    {"user": "carol", "amount": 50.0, "country": "de", "ts": 1100},
    {"user": "bob", "amount": 15.0, "country": "fr", "ts": 2200},
]


def rows_of(result):
    return sorted(result.get(), key=repr)


class TestBoundedTables:
    def test_select_and_where(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS)
                  .where(lambda r: r["amount"] >= 20, reads=("amount",))
                  .select("user", "amount")
                  .collect())
        env.execute()
        assert rows_of(result) == sorted([
            {"user": "alice", "amount": 30.0},
            {"user": "alice", "amount": 20.0},
            {"user": "carol", "amount": 50.0}], key=repr)

    def test_derived_columns(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS)
                  .select("user",
                          gross=(lambda r: r["amount"] * 1.2, ("amount",)))
                  .collect())
        env.execute()
        gross = {row["user"]: row["gross"] for row in result.get()
                 if row["user"] == "carol"}
        assert gross["carol"] == pytest.approx(60.0)

    def test_group_by_aggregations(self):
        env = StreamExecutionEnvironment(parallelism=2)
        result = (Table.from_rows(env, ORDERS)
                  .group_by("user")
                  .agg(revenue=("sum", "amount"),
                       orders=("count", None),
                       biggest=("max", "amount"))
                  .collect())
        env.execute()
        by_user = {row["user"]: row for row in result.get()}
        assert by_user["alice"] == {"user": "alice", "revenue": 50.0,
                                    "orders": 2, "biggest": 30.0}
        assert by_user["bob"]["revenue"] == 20.0

    def test_multi_key_grouping(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS)
                  .group_by("country", "user")
                  .agg(n=("count", None))
                  .collect())
        env.execute()
        keys = {(row["country"], row["user"]) for row in result.get()}
        assert ("de", "alice") in keys and ("fr", "bob") in keys

    def test_avg_and_min(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS)
                  .group_by("country")
                  .agg(mean=("avg", "amount"), smallest=("min", "amount"))
                  .collect())
        env.execute()
        by_country = {row["country"]: row for row in result.get()}
        assert by_country["fr"]["mean"] == pytest.approx(10.0)
        assert by_country["de"]["smallest"] == 20.0


class TestStreamingTables:
    def test_tumbling_window_aggregation(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS, bounded=False,
                                  time_column="ts")
                  .window(Tumble("ts", 1000))
                  .group_by("country")
                  .agg(revenue=("sum", "amount"))
                  .collect())
        env.execute()
        rows = {(row["country"], row["window_start"]): row["revenue"]
                for row in result.get()}
        assert rows[("de", 0)] == 30.0
        assert rows[("de", 1000)] == 70.0
        assert rows[("fr", 2000)] == 15.0

    def test_sliding_window(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS, bounded=False,
                                  time_column="ts")
                  .window(Slide("ts", 2000, 1000))
                  .agg(n=("count", None))
                  .collect())
        env.execute()
        total = sum(row["n"] for row in result.get())
        assert total == len(ORDERS) * 2  # each row in 2 sliding windows

    def test_session_window(self):
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, ORDERS, bounded=False,
                                  time_column="ts")
                  .window(Session("ts", 500))
                  .group_by("user")
                  .agg(n=("count", None))
                  .collect())
        env.execute()
        alice = [row for row in result.get() if row["user"] == "alice"]
        assert len(alice) == 2  # two separate sessions

    def test_unbounded_group_by_without_window_rejected(self):
        env = StreamExecutionEnvironment()
        table = Table.from_rows(env, ORDERS, bounded=False,
                                time_column="ts")
        with pytest.raises(ValueError, match="needs a window"):
            table.group_by("user").agg(n=("count", None))

    def test_out_of_order_rows_with_watermark_delay(self):
        rows = [dict(row) for row in ORDERS]
        random.Random(3).shuffle(rows)
        env = StreamExecutionEnvironment()
        result = (Table.from_rows(env, rows, bounded=False,
                                  time_column="ts", watermark_delay=5000)
                  .window(Tumble("ts", 1000))
                  .group_by("country")
                  .agg(revenue=("sum", "amount"))
                  .collect())
        env.execute()
        rows_out = {(row["country"], row["window_start"]): row["revenue"]
                    for row in result.get()}
        assert rows_out[("de", 1000)] == 70.0


class TestValidation:
    def test_schema_mismatch_rejected(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(ValueError, match="does not match schema"):
            Table.from_rows(env, [{"a": 1}, {"b": 2}])

    def test_unknown_column_select(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(ValueError, match="unknown columns"):
            Table.from_rows(env, ORDERS).select("nope")

    def test_unknown_column_in_where_reads(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(ValueError, match="unknown columns"):
            Table.from_rows(env, ORDERS).where(lambda r: True,
                                               reads=("ghost",))

    def test_unknown_aggregation(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(ValueError, match="unsupported aggregation"):
            (Table.from_rows(env, ORDERS).group_by("user")
             .agg(x=("median", "amount")))

    def test_streaming_requires_time_column(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(ValueError, match="time_column"):
            Table.from_rows(env, ORDERS, bounded=False)


class TestOptimizer:
    def _plan(self):
        scan = Scan(("a", "b", "c"), bounded=True)
        select = Select(keep=("a", "b"), derived={}, derived_reads={})
        where_a = Where(lambda r: r["a"] > 0, reads=("a",), description="a>0")
        where_b = Where(lambda r: r["b"] > 0, reads=("b",), description="b>0")
        return scan, select, where_a, where_b

    def test_predicate_pushdown(self):
        scan, select, where_a, _ = self._plan()
        optimized = optimize([scan, select, where_a])
        from repro.table.plan import schema_after
        # The Where ends up as the last op: it was pushed before the
        # user's Select, which collapsed into the pruning projection.
        assert isinstance(optimized[-1], Where)
        assert isinstance(optimized[1], Select)  # pruning projection
        assert schema_after(optimized) == ("a", "b")

    def test_pushdown_blocked_by_derived_dependency(self):
        scan = Scan(("a",), bounded=True)
        select = Select(keep=(), derived={"d": lambda r: r["a"] * 2},
                        derived_reads={"d": ("a",)})
        where_d = Where(lambda r: r["d"] > 0, reads=("d",),
                        description="d>0")
        optimized = optimize([scan, select, where_d])
        select_pos = max(i for i, op in enumerate(optimized)
                         if isinstance(op, Select))
        where_pos = [i for i, op in enumerate(optimized)
                     if isinstance(op, Where)][0]
        assert where_pos > select_pos  # must stay after

    def test_filter_fusion(self):
        scan, _, where_a, where_b = self._plan()
        optimized = optimize([scan, where_a, where_b])
        wheres = [op for op in optimized if isinstance(op, Where)]
        assert len(wheres) == 1
        assert "AND" in wheres[0].description

    def test_projection_pruning_narrows_scan(self):
        scan, select, where_a, _ = self._plan()
        optimized = optimize([scan, select, where_a])
        assert isinstance(optimized[1], Select)
        assert set(optimized[1].keep) <= {"a", "b"}

    def test_explain_shows_plan(self):
        env = StreamExecutionEnvironment()
        table = (Table.from_rows(env, ORDERS)
                 .select("user", "amount")
                 .where(lambda r: r["amount"] > 10, reads=("amount",),
                        description="amount>10"))
        text = table.explain()
        assert "Scan" in text and "Where" in text and "Select" in text


class TestOptimizationEquivalence:
    """The optimizer must never change results -- randomized check."""

    def _random_rows(self, rng, n=60):
        return [{"k": rng.choice("xyz"), "v": rng.randint(-10, 10),
                 "w": rng.random(), "ts": i * 7}
                for i, _ in enumerate(range(n))]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bounded_plans_agree(self, seed):
        rng = random.Random(seed)
        rows = self._random_rows(rng)

        def build(env):
            return (Table.from_rows(env, rows)
                    .where(lambda r: r["v"] > -5, reads=("v",))
                    .select("k", "v")
                    .where(lambda r: r["v"] < 8, reads=("v",))
                    .group_by("k")
                    .agg(total=("sum", "v"), n=("count", None)))

        env1 = StreamExecutionEnvironment()
        optimized = build(env1).collect(optimized=True)
        env1.execute()
        env2 = StreamExecutionEnvironment()
        unoptimized = build(env2).collect(optimized=False)
        env2.execute()
        assert rows_of(optimized) == rows_of(unoptimized)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_streaming_plans_agree(self, seed):
        rng = random.Random(seed)
        rows = self._random_rows(rng)

        def build(env):
            return (Table.from_rows(env, rows, bounded=False,
                                    time_column="ts")
                    .select("k", "v", "ts")
                    .where(lambda r: r["v"] != 0, reads=("v",))
                    .window(Tumble("ts", 100))
                    .group_by("k")
                    .agg(total=("sum", "v")))

        env1 = StreamExecutionEnvironment()
        optimized = build(env1).collect(optimized=True)
        env1.execute()
        env2 = StreamExecutionEnvironment()
        unoptimized = build(env2).collect(optimized=False)
        env2.execute()
        assert rows_of(optimized) == rows_of(unoptimized)

    def test_pushdown_reduces_records_into_select(self):
        env = StreamExecutionEnvironment()
        rows = self._random_rows(random.Random(9), n=200)
        table = (Table.from_rows(env, rows)
                 .select("k", "v")
                 .where(lambda r: r["v"] > 0, reads=("v",),
                        description="v>0"))
        table.collect(optimized=True)
        env.execute()
        engine = env.last_engine
        # The where[] operator now sits upstream of select; records
        # flowing out of the filter are fewer than the scan emitted.
        counters = {}
        for task in engine.tasks:
            counters.update(task.metrics.counters())
        survivors = sum(1 for row in rows if row["v"] > 0)
        collected = [name for name in counters if "records" in name]
        assert survivors < len(rows)  # sanity for this seed


class TestTableJoin:
    USERS = [
        {"user": "alice", "country": "de"},
        {"user": "bob", "country": "fr"},
        {"user": "carol", "country": "de"},
    ]

    def test_join_enriches_rows(self):
        env = StreamExecutionEnvironment(parallelism=2)
        orders = Table.from_rows(env, ORDERS).select("user", "amount")
        users = Table.from_rows(env, self.USERS)
        joined = orders.join(users, on=("user",))
        assert set(joined.columns) == {"user", "amount", "country"}
        result = joined.collect()
        env.execute()
        rows = result.get()
        assert len(rows) == len(ORDERS)
        by_user = {row["user"]: row["country"] for row in rows}
        assert by_user == {"alice": "de", "bob": "fr", "carol": "de"}

    def test_join_then_group(self):
        env = StreamExecutionEnvironment()
        orders = Table.from_rows(env, ORDERS).select("user", "amount")
        users = Table.from_rows(env, self.USERS)
        report = (orders.join(users, on=("user",))
                  .group_by("country")
                  .agg(revenue=("sum", "amount"))
                  .collect())
        env.execute()
        by_country = {row["country"]: row["revenue"]
                      for row in report.get()}
        assert by_country == {"de": 100.0, "fr": 20.0}

    def test_unmatched_left_rows_dropped(self):
        env = StreamExecutionEnvironment()
        left = Table.from_rows(env, [{"user": "ghost", "amount": 1.0}])
        users = Table.from_rows(env, self.USERS)
        result = left.join(users, on=("user",)).collect()
        env.execute()
        assert result.get() == []

    def test_validation(self):
        env = StreamExecutionEnvironment()
        orders = Table.from_rows(env, ORDERS)
        users = Table.from_rows(env, self.USERS)
        with pytest.raises(ValueError, match="missing on the left"):
            users.join(orders, on=("nope",))
        with pytest.raises(ValueError, match="ambiguous"):
            # both carry 'country' as a non-key column
            users.join(Table.from_rows(
                env, [{"user": "x", "country": "es"}]), on=("user",))

    def test_streaming_join_rejected(self):
        env = StreamExecutionEnvironment()
        stream = Table.from_rows(env, ORDERS, bounded=False,
                                 time_column="ts")
        users = Table.from_rows(env, self.USERS)
        with pytest.raises(ValueError, match="bounded"):
            stream.join(users, on=("user",))


class TestBoundedWindowing:
    def test_windows_work_on_bounded_tables_too(self):
        """Batch = a stream that ends: windowed aggregation is legal on
        bounded relations and produces the same rows."""
        env = StreamExecutionEnvironment()
        bounded = (Table.from_rows(env, ORDERS, bounded=True,
                                   time_column="ts")
                   .window(Tumble("ts", 1000))
                   .group_by("country")
                   .agg(revenue=("sum", "amount"))
                   .collect())
        env.execute()
        env2 = StreamExecutionEnvironment()
        streaming = (Table.from_rows(env2, ORDERS, bounded=False,
                                     time_column="ts")
                     .window(Tumble("ts", 1000))
                     .group_by("country")
                     .agg(revenue=("sum", "amount"))
                     .collect())
        env2.execute()
        assert rows_of(bounded) == rows_of(streaming)
