"""Equivalence and cost tests across all window-aggregation strategies.

Every strategy (Cutty, eager, lazy, Pairs, Panes, B-Int) must produce the
*same window results* as a brute-force reference on in-order streams;
they differ only in cost, which the second half of this module checks
matches the Cutty paper's ordering.
"""

import random

import pytest

from repro.cutty import (
    CuttyAggregator,
    PeriodicWindows,
    SessionWindows,
    SharedCuttyAggregator,
)
from repro.cutty.baselines import (
    BIntAggregator,
    EagerPerWindowAggregator,
    LazyRecomputeAggregator,
    PairsAggregator,
    PanesAggregator,
    UnsharedMultiQueryAggregator,
)
from repro.cutty.specs import CountWindows, PunctuationWindows
from repro.metrics import AggregationCostCounter
from repro.windowing.aggregates import MaxAggregate, SumAggregate


# -- brute-force references ---------------------------------------------------

def reference_periodic(stream, size, slide, aggregate_fn=sum):
    """Expected {(start, end): value} for sliding windows, nonempty only,
    limited to windows with start <= last timestamp (the flush horizon)."""
    if not stream:
        return {}
    first_ts = stream[0][1]
    last_ts = max(ts for _, ts in stream)
    earliest = ((first_ts - size) // slide + 1) * slide
    expected = {}
    for start in range(earliest, last_ts + 1, slide):
        values = [v for v, ts in stream if start <= ts < start + size]
        if values:
            expected[(start, start + size)] = aggregate_fn(values)
    return expected


def reference_sessions(stream, gap, aggregate_fn=sum):
    expected = {}
    session = []
    for value, ts in stream:
        if session and ts > session[-1][1] + gap:
            start = session[0][1]
            end = session[-1][1] + gap
            expected[(start, end)] = aggregate_fn(v for v, _ in session)
            session = []
        session.append((value, ts))
    if session:
        start = session[0][1]
        end = session[-1][1] + gap
        expected[(start, end)] = aggregate_fn(v for v, _ in session)
    return expected


def reference_count(stream, size, slide, aggregate_fn=sum):
    expected = {}
    for start in range(0, len(stream) - size + 1, slide):
        values = [v for v, _ in stream[start:start + size]]
        expected[(start, start + size)] = aggregate_fn(values)
    return expected


def run(aggregator, stream, flush_ts=None):
    """Feed a stream, flush, and index results by (start, end)."""
    results = {}
    for value, ts in stream:
        for result in aggregator.insert(value, ts):
            results[(result.start, result.end)] = result.value
    last_ts = max((ts for _, ts in stream), default=0)
    for result in aggregator.flush(flush_ts if flush_ts is not None
                                   else last_ts):
        results[(result.start, result.end)] = result.value
    return results


def random_stream(n, max_gap=30, seed=7):
    rng = random.Random(seed)
    ts = 0
    stream = []
    for _ in range(n):
        ts += rng.randint(0, max_gap)
        stream.append((rng.randint(-5, 10), ts))
    return stream


# -- correctness: periodic windows -----------------------------------------------

PERIODIC_CASES = [(10, 10), (10, 5), (30, 10), (25, 10), (100, 7), (13, 13)]


@pytest.mark.parametrize("size,slide", PERIODIC_CASES)
def test_cutty_matches_reference_on_periodic(size, slide):
    stream = random_stream(300, seed=size * 100 + slide)
    aggregator = CuttyAggregator(SumAggregate(), PeriodicWindows(size, slide))
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


@pytest.mark.parametrize("size,slide", PERIODIC_CASES)
def test_eager_matches_reference_on_periodic(size, slide):
    stream = random_stream(300, seed=size * 100 + slide)
    aggregator = EagerPerWindowAggregator(
        SumAggregate(), {0: PeriodicWindows(size, slide)})
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


@pytest.mark.parametrize("size,slide", PERIODIC_CASES)
def test_lazy_matches_reference_on_periodic(size, slide):
    stream = random_stream(300, seed=size * 100 + slide)
    aggregator = LazyRecomputeAggregator(
        SumAggregate(), {0: PeriodicWindows(size, slide)})
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


@pytest.mark.parametrize("size,slide", PERIODIC_CASES)
def test_pairs_matches_reference_on_periodic(size, slide):
    stream = random_stream(300, seed=size * 100 + slide)
    aggregator = PairsAggregator(SumAggregate(), size, slide)
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


@pytest.mark.parametrize("size,slide", PERIODIC_CASES)
def test_panes_matches_reference_on_periodic(size, slide):
    stream = random_stream(300, seed=size * 100 + slide)
    aggregator = PanesAggregator(SumAggregate(), size, slide)
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


@pytest.mark.parametrize("size,slide", PERIODIC_CASES)
def test_bint_matches_reference_on_periodic(size, slide):
    stream = random_stream(300, seed=size * 100 + slide)
    aggregator = BIntAggregator(SumAggregate(),
                                {0: PeriodicWindows(size, slide)})
    assert run(aggregator, stream) == reference_periodic(stream, size, slide)


def test_cutty_with_non_invertible_aggregate():
    stream = random_stream(300, seed=42)
    aggregator = CuttyAggregator(MaxAggregate(), PeriodicWindows(30, 10))
    expected = reference_periodic(stream, 30, 10, aggregate_fn=max)
    assert run(aggregator, stream) == expected


def test_dense_timestamps_with_duplicates():
    stream = [(i % 7, i // 3) for i in range(200)]  # 3 events per ts
    aggregator = CuttyAggregator(SumAggregate(), PeriodicWindows(10, 5))
    assert run(aggregator, stream) == reference_periodic(stream, 10, 5)


# -- correctness: user-defined windows ----------------------------------------------

@pytest.mark.parametrize("gap", [5, 17, 50])
def test_cutty_matches_reference_on_sessions(gap):
    stream = random_stream(300, max_gap=gap * 2, seed=gap)
    aggregator = CuttyAggregator(SumAggregate(), SessionWindows(gap))
    assert run(aggregator, stream) == reference_sessions(stream, gap)


@pytest.mark.parametrize("gap", [5, 17])
def test_lazy_matches_reference_on_sessions(gap):
    stream = random_stream(300, max_gap=gap * 2, seed=gap)
    aggregator = LazyRecomputeAggregator(SumAggregate(),
                                         {0: SessionWindows(gap)})
    assert run(aggregator, stream) == reference_sessions(stream, gap)


@pytest.mark.parametrize("size,slide", [(5, 5), (8, 2), (10, 3)])
def test_cutty_matches_reference_on_count_windows(size, slide):
    stream = random_stream(200, seed=size)
    aggregator = CuttyAggregator(SumAggregate(), CountWindows(size, slide))
    assert run(aggregator, stream) == reference_count(stream, size, slide)


def test_cutty_punctuation_windows():
    stream = [(1, 0), (2, 5), (0, 10), (3, 15), (0, 20), (4, 25)]
    aggregator = CuttyAggregator(
        SumAggregate(), PunctuationWindows(lambda v: v == 0))
    results = run(aggregator, stream)
    # Windows: [0,10) -> 1+2, [10,20) -> 0+3, [20,26) -> 0+4.
    assert results == {(0, 10): 3, (10, 20): 3, (20, 26): 4}


# -- multi-query sharing ---------------------------------------------------------------

def test_shared_multi_query_matches_per_query_references():
    stream = random_stream(400, seed=11)
    queries = {
        "q10": PeriodicWindows(10, 5),
        "q50": PeriodicWindows(50, 10),
        "sess": SessionWindows(25),
    }
    aggregator = SharedCuttyAggregator(SumAggregate(), queries)
    results = {}
    for value, ts in stream:
        for result in aggregator.insert(value, ts):
            results[(result.query_id, result.start, result.end)] = result.value
    for result in aggregator.flush():
        results[(result.query_id, result.start, result.end)] = result.value

    for (start, end), value in reference_periodic(stream, 10, 5).items():
        assert results[("q10", start, end)] == value
    for (start, end), value in reference_periodic(stream, 50, 10).items():
        assert results[("q50", start, end)] == value
    for (start, end), value in reference_sessions(stream, 25).items():
        assert results[("sess", start, end)] == value


def test_unshared_wrapper_matches_shared_results():
    stream = random_stream(200, seed=3)
    sizes = {(f"q{size}"): size for size in (10, 30, 50)}
    shared = SharedCuttyAggregator(
        SumAggregate(),
        {qid: PeriodicWindows(size, 10) for qid, size in sizes.items()})
    unshared = UnsharedMultiQueryAggregator(
        lambda qid, counter: CuttyAggregator(
            SumAggregate(), PeriodicWindows(sizes[qid], 10), counter),
        list(sizes))
    shared_results = {}
    unshared_results = {}
    for value, ts in stream:
        for result in shared.insert(value, ts):
            shared_results[(result.query_id, result.start, result.end)] = \
                result.value
        for result in unshared.insert(value, ts):
            unshared_results[(result.query_id, result.start, result.end)] = \
                result.value
    for result in shared.flush():
        shared_results[(result.query_id, result.start, result.end)] = \
            result.value
    last_ts = stream[-1][1]
    for result in unshared.flush(last_ts):
        unshared_results[(result.query_id, result.start, result.end)] = \
            result.value
    assert shared_results == unshared_results


# -- cost ordering (the paper's claims) ----------------------------------------------------

def dense_stream(n):
    return [(1, t) for t in range(n)]


def test_cutty_one_lift_per_record():
    stream = dense_stream(1000)
    counter = AggregationCostCounter()
    aggregator = CuttyAggregator(SumAggregate(), PeriodicWindows(100, 10),
                                 counter)
    run(aggregator, stream)
    assert counter.lifts.value == len(stream)


def test_eager_lifts_scale_with_overlap():
    stream = dense_stream(1000)
    counter = AggregationCostCounter()
    aggregator = EagerPerWindowAggregator(
        SumAggregate(), {0: PeriodicWindows(100, 10)}, counter)
    run(aggregator, stream)
    # size/slide = 10 windows contain each element.
    assert counter.lifts.value == pytest.approx(10 * len(stream), rel=0.05)


def test_cutty_beats_eager_on_large_overlap():
    stream = dense_stream(2000)
    cutty_counter = AggregationCostCounter()
    run(CuttyAggregator(SumAggregate(), PeriodicWindows(500, 10),
                        cutty_counter), stream)
    eager_counter = AggregationCostCounter()
    run(EagerPerWindowAggregator(SumAggregate(),
                                 {0: PeriodicWindows(500, 10)},
                                 eager_counter), stream)
    assert (cutty_counter.operations_per_record()
            < eager_counter.operations_per_record() / 5)


def test_cutty_memory_beats_bint():
    stream = dense_stream(2000)
    cutty_counter = AggregationCostCounter()
    run(CuttyAggregator(SumAggregate(), PeriodicWindows(500, 50),
                        cutty_counter), stream)
    bint_counter = AggregationCostCounter()
    run(BIntAggregator(SumAggregate(), {0: PeriodicWindows(500, 50)},
                       bint_counter), stream)
    # Cutty stores ~size/slide partials; B-Int stores ~size records.
    assert cutty_counter.max_live_partials * 10 < bint_counter.max_live_partials


def test_sharing_is_sublinear_in_query_count():
    stream = dense_stream(1000)
    rng = random.Random(5)

    def cost_of(num_queries):
        queries = {i: PeriodicWindows(rng.choice([100, 200, 300]), 20)
                   for i in range(num_queries)}
        counter = AggregationCostCounter()
        aggregator = SharedCuttyAggregator(SumAggregate(), queries, counter)
        for value, ts in stream:
            aggregator.insert(value, ts)
        return counter.lifts.value

    # Lifts do not grow with the number of queries (they stay 1/record).
    assert cost_of(8) == cost_of(1) == len(stream)


def test_snapshot_restore_roundtrip_mid_stream():
    stream = dense_stream(500)
    aggregator = CuttyAggregator(SumAggregate(), PeriodicWindows(50, 10))
    results_before = {}
    for value, ts in stream[:250]:
        for result in aggregator.insert(value, ts):
            results_before[(result.start, result.end)] = result.value
    snapshot = aggregator.snapshot()

    resumed = CuttyAggregator(SumAggregate(), PeriodicWindows(50, 10))
    resumed.restore(snapshot)
    for value, ts in stream[250:]:
        for result in resumed.insert(value, ts):
            results_before[(result.start, result.end)] = result.value
    for result in resumed.flush():
        results_before[(result.start, result.end)] = result.value
    assert results_before == reference_periodic(stream, 50, 10)
