"""Unit tests for watermark strategies and generators."""

from repro.runtime.elements import MIN_TIMESTAMP
from repro.time.watermarks import (
    BoundedOutOfOrdernessGenerator,
    PunctuatedGenerator,
    WatermarkStrategy,
)


class TestBoundedOutOfOrderness:
    def test_tracks_max_seen_minus_bound(self):
        generator = BoundedOutOfOrdernessGenerator(5)
        generator.on_event(None, 100)
        assert generator.on_periodic() == 95
        generator.on_event(None, 90)  # out-of-order: max unchanged
        assert generator.on_periodic() == 95
        generator.on_event(None, 120)
        assert generator.on_periodic() == 115

    def test_silent_before_first_event(self):
        assert BoundedOutOfOrdernessGenerator(5).on_periodic() is None

    def test_zero_bound_is_monotonic(self):
        generator = BoundedOutOfOrdernessGenerator(0)
        generator.on_event(None, 7)
        assert generator.on_periodic() == 7

    def test_negative_bound_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            BoundedOutOfOrdernessGenerator(-1)


class TestPunctuated:
    def test_emits_only_on_punctuation(self):
        generator = PunctuatedGenerator(lambda v: v == "MARK")
        assert generator.on_event("data", 10) is None
        assert generator.on_event("MARK", 20) == 20
        assert generator.on_periodic() is None

    def test_custom_extractor(self):
        generator = PunctuatedGenerator(
            lambda v: isinstance(v, dict) and "wm" in v,
            extract=lambda v: v["wm"])
        assert generator.on_event({"wm": 42}, 10) == 42


class TestStrategyFactories:
    def test_monotonic_factory(self):
        strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
        assert strategy.timestamp_assigner(("x", 9)) == 9
        generator = strategy.generator_factory()
        generator.on_event(None, 9)
        assert generator.on_periodic() == 9

    def test_bounded_factory_makes_fresh_generators(self):
        strategy = WatermarkStrategy.for_bounded_out_of_orderness(
            lambda v: v, 10)
        g1 = strategy.generator_factory()
        g2 = strategy.generator_factory()
        g1.on_event(None, 100)
        assert g2.on_periodic() is None  # independent state

    def test_invalid_interval_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            WatermarkStrategy(lambda v: v, lambda: None,
                              periodic_interval_ms=0)
