"""Unit tests for aggregate functions (lift/combine/lower algebra)."""

import math

import pytest

from repro.metrics import AggregationCostCounter
from repro.windowing.aggregates import (
    AvgAggregate,
    CountAggregate,
    InstrumentedAggregate,
    MaxAggregate,
    MinAggregate,
    MinMaxSumCountAggregate,
    ReduceAggregate,
    SumAggregate,
)


def fold(aggregate, values):
    acc = aggregate.create_accumulator()
    for value in values:
        acc = aggregate.add(value, acc)
    return acc


class TestSum:
    def test_fold_and_result(self):
        aggregate = SumAggregate()
        assert aggregate.get_result(fold(aggregate, [1, 2, 3])) == 6

    def test_merge_equals_concatenated_fold(self):
        aggregate = SumAggregate()
        left = fold(aggregate, [1, 2])
        right = fold(aggregate, [3, 4])
        assert aggregate.merge(left, right) == fold(aggregate, [1, 2, 3, 4])

    def test_retract_inverts_add(self):
        aggregate = SumAggregate()
        acc = fold(aggregate, [1, 2, 3])
        assert aggregate.retract(2, acc) == 4
        assert aggregate.invertible


class TestCount:
    def test_counts_elements_not_values(self):
        aggregate = CountAggregate()
        assert aggregate.get_result(fold(aggregate, ["a", "b", "c"])) == 3

    def test_retract(self):
        aggregate = CountAggregate()
        assert aggregate.retract("x", 5) == 4


class TestMinMax:
    def test_min(self):
        aggregate = MinAggregate()
        assert aggregate.get_result(fold(aggregate, [5, 3, 9])) == 3

    def test_max(self):
        aggregate = MaxAggregate()
        assert aggregate.get_result(fold(aggregate, [5, 3, 9])) == 9

    def test_not_invertible(self):
        assert not MinAggregate().invertible
        with pytest.raises(NotImplementedError):
            MaxAggregate().retract(1, 2)

    def test_empty_returns_none(self):
        aggregate = MinAggregate()
        assert aggregate.get_result(aggregate.create_accumulator()) is None

    def test_merge(self):
        aggregate = MaxAggregate()
        assert aggregate.merge(3, 7) == 7


class TestAvg:
    def test_mean(self):
        aggregate = AvgAggregate()
        assert aggregate.get_result(fold(aggregate, [1, 2, 3, 4])) == 2.5

    def test_merge_weighted(self):
        aggregate = AvgAggregate()
        left = fold(aggregate, [0, 0, 0])
        right = fold(aggregate, [6])
        assert aggregate.get_result(aggregate.merge(left, right)) == 1.5

    def test_empty_is_none(self):
        aggregate = AvgAggregate()
        assert aggregate.get_result(aggregate.create_accumulator()) is None


class TestMinMaxSumCount:
    def test_composite(self):
        aggregate = MinMaxSumCountAggregate()
        result = aggregate.get_result(fold(aggregate, [2, 8, 5]))
        assert result == {"min": 2, "max": 8, "sum": 15, "count": 3,
                          "avg": 5.0}

    def test_merge(self):
        aggregate = MinMaxSumCountAggregate()
        merged = aggregate.merge(fold(aggregate, [1, 2]),
                                 fold(aggregate, [10]))
        assert aggregate.get_result(merged)["max"] == 10

    def test_empty_is_none(self):
        aggregate = MinMaxSumCountAggregate()
        assert aggregate.get_result(aggregate.create_accumulator()) is None


class TestReduceAdapter:
    def test_wraps_binary_function(self):
        aggregate = ReduceAggregate(lambda a, b: a + b)
        assert aggregate.get_result(fold(aggregate, [1, 2, 3])) == 6

    def test_merge_handles_empty_sides(self):
        aggregate = ReduceAggregate(max)
        empty = aggregate.create_accumulator()
        assert aggregate.merge(empty, 5) == 5
        assert aggregate.merge(5, empty) == 5

    def test_empty_result_is_none(self):
        aggregate = ReduceAggregate(max)
        assert aggregate.get_result(aggregate.create_accumulator()) is None


class TestInstrumented:
    def test_counts_primitive_operations(self):
        costs = AggregationCostCounter()
        aggregate = InstrumentedAggregate(SumAggregate(), costs)
        acc = fold(aggregate, [1, 2, 3])        # 3 lifts
        acc = aggregate.merge(acc, fold(aggregate, [4]))  # +1 lift, 1 combine
        aggregate.get_result(acc)               # 1 lower
        assert costs.lifts.value == 4
        assert costs.combines.value == 1
        assert costs.lowers.value == 1

    def test_preserves_semantics_and_flags(self):
        aggregate = InstrumentedAggregate(SumAggregate())
        assert aggregate.get_result(fold(aggregate, [1, 2])) == 3
        assert aggregate.invertible
        assert aggregate.retract(1, 5) == 4
