"""Unit tests for partitioners and the stable key hash."""

from repro.runtime.elements import Record
from repro.runtime.partition import (
    BroadcastPartitioner,
    ForwardPartitioner,
    GlobalPartitioner,
    HashPartitioner,
    RebalancePartitioner,
    hash_key,
)


class TestHashKey:
    def test_stable_for_strings(self):
        # FNV-1a reference value stability (guards against PYTHONHASHSEED).
        assert hash_key("user-42") == hash_key("user-42")
        assert hash_key("a") != hash_key("b")

    def test_bytes_and_str_agree(self):
        assert hash_key("abc") == hash_key(b"abc")

    def test_tuples(self):
        assert hash_key(("a", 1)) == hash_key(("a", 1))
        assert hash_key(("a", 1)) != hash_key(("a", 2))

    def test_integers_pass_through(self):
        assert hash_key(7) == hash(7)


class TestForward:
    def test_routes_to_same_index(self):
        partitioner = ForwardPartitioner()
        assert partitioner.select(Record(1), 4, 2) == (2,)
        assert partitioner.is_pointwise


class TestHash:
    def test_same_key_same_channel(self):
        partitioner = HashPartitioner(lambda v: v["user"])
        record_a = Record({"user": "u1"})
        record_b = Record({"user": "u1"})
        assert (partitioner.select(record_a, 8, 0)
                == partitioner.select(record_b, 8, 3))
        assert not partitioner.is_pointwise

    def test_select_does_not_mutate_record(self):
        partitioner = HashPartitioner(lambda v: v)
        record = Record("k")
        partitioner.select(record, 4, 0)
        assert record.key is None

    def test_distributes_across_channels(self):
        partitioner = HashPartitioner(lambda v: v)
        channels = {partitioner.select(Record("key-%d" % i), 4, 0)[0]
                    for i in range(100)}
        assert len(channels) == 4  # all channels used for 100 distinct keys


class TestRebalance:
    def test_round_robin(self):
        partitioner = RebalancePartitioner()
        selections = [partitioner.select(Record(i), 3, 0)[0] for i in range(6)]
        assert selections == [0, 1, 2, 0, 1, 2]


class TestBroadcast:
    def test_all_channels(self):
        partitioner = BroadcastPartitioner()
        assert partitioner.select(Record(1), 3, 0) == (0, 1, 2)


class TestGlobal:
    def test_always_channel_zero(self):
        partitioner = GlobalPartitioner()
        assert partitioner.select(Record(1), 5, 4) == (0,)
