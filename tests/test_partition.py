"""Unit tests for partitioners and the stable key hash."""

import json
import os
import subprocess
import sys

import pytest

from repro.runtime.elements import Record
from repro.runtime.partition import (
    BroadcastPartitioner,
    ForwardPartitioner,
    GlobalPartitioner,
    HashPartitioner,
    RebalancePartitioner,
    hash_key,
)


class TestHashKey:
    def test_stable_for_strings(self):
        # FNV-1a reference value stability (guards against PYTHONHASHSEED).
        assert hash_key("user-42") == hash_key("user-42")
        assert hash_key("a") != hash_key("b")

    def test_bytes_and_str_agree(self):
        assert hash_key("abc") == hash_key(b"abc")

    def test_tuples(self):
        assert hash_key(("a", 1)) == hash_key(("a", 1))
        assert hash_key(("a", 1)) != hash_key(("a", 2))

    def test_integers_pass_through(self):
        assert hash_key(7) == hash(7)

    def test_numeric_equality_co_locates(self):
        # True == 1 == 1.0 are one dict key; keyed state placement must
        # agree with Python equality or rescaled state would split.
        assert hash_key(True) == hash_key(1) == hash_key(1.0)
        assert hash_key(False) == hash_key(0) == hash_key(-0.0)
        assert hash_key(2.0) == hash_key(2)
        assert hash_key(-3) == hash_key(-3.0)

    def test_nan_and_none_are_fixed(self):
        assert hash_key(float("nan")) == hash_key(float("nan"))
        assert hash_key(None) == hash_key(None)
        assert hash_key(None) != hash_key(float("nan"))

    def test_identity_hashed_objects_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="Opaque"):
            hash_key(Opaque())
        with pytest.raises(TypeError, match="object"):
            hash_key(object())

    def test_custom_stable_hash_is_trusted(self):
        class StableKey:
            def __init__(self, name):
                self.name = name

            def __hash__(self):
                return hash_key(self.name)

            def __eq__(self, other):
                return self.name == other.name

        # Trusted (no TypeError) and deterministic across instances;
        # builtin hash() may fold the digest, so only stability holds.
        assert hash_key(StableKey("a")) == hash_key(StableKey("a"))
        assert hash_key(StableKey("a")) != hash_key(StableKey("b"))


#: Key battery evaluated inside each child interpreter: every supported
#: encoding branch (None, str incl. non-ASCII, bytes, bool, small and
#: >64-bit ints, integral/fractional/signed-zero/inf/NaN floats, nested
#: tuples).  Kept as source text so both subprocesses build identical
#: values without pickling anything between them.
_KEY_BATTERY_SRC = """[
    None, "", "user-42", "h\\u00e9llo w\\u00f6rld", "a" * 300,
    b"", b"\\x00\\xff\\x7f", 0, 1, -1, 7, -7, 2**63, 2**80, -(2**80),
    True, False, 0.0, -0.0, 2.0, -3.0, 3.14159, -2.71828,
    float("inf"), float("-inf"), float("nan"),
    (), ("a", 1), ("a", 2), (("nested", 2.0), None, b"x"),
]"""


def _hash_battery_in_subprocess(hashseed):
    """Run ``hash_key`` over the battery in a fresh interpreter whose
    builtin ``hash`` is salted with ``hashseed``."""
    script = (
        "import json, sys\n"
        "from repro.runtime.partition import hash_key\n"
        "keys = " + _KEY_BATTERY_SRC + "\n"
        "print(json.dumps([hash_key(k) for k in keys]))\n")
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    repo_src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestHashKeyCrossInterpreter:
    """The regression this PR exists for: digests must not depend on the
    interpreter's per-run hash salt (PYTHONHASHSEED), or keyed state
    lands on different subtasks after every restart and the multiprocess
    workers disagree with each other about routing."""

    def test_digests_identical_across_interpreter_runs(self):
        first = _hash_battery_in_subprocess("0")
        second = _hash_battery_in_subprocess("12345")
        assert first == second

    def test_parent_process_agrees_with_children(self):
        keys = eval(_KEY_BATTERY_SRC)  # same literal the children use
        local = [hash_key(k) for k in keys]
        assert local == _hash_battery_in_subprocess("99")


class TestForward:
    def test_routes_to_same_index(self):
        partitioner = ForwardPartitioner()
        assert partitioner.select(Record(1), 4, 2) == (2,)
        assert partitioner.is_pointwise


class TestHash:
    def test_same_key_same_channel(self):
        partitioner = HashPartitioner(lambda v: v["user"])
        record_a = Record({"user": "u1"})
        record_b = Record({"user": "u1"})
        assert (partitioner.select(record_a, 8, 0)
                == partitioner.select(record_b, 8, 3))
        assert not partitioner.is_pointwise

    def test_select_does_not_mutate_record(self):
        partitioner = HashPartitioner(lambda v: v)
        record = Record("k")
        partitioner.select(record, 4, 0)
        assert record.key is None

    def test_distributes_across_channels(self):
        partitioner = HashPartitioner(lambda v: v)
        channels = {partitioner.select(Record("key-%d" % i), 4, 0)[0]
                    for i in range(100)}
        assert len(channels) == 4  # all channels used for 100 distinct keys


class TestRebalance:
    def test_round_robin(self):
        partitioner = RebalancePartitioner()
        selections = [partitioner.select(Record(i), 3, 0)[0] for i in range(6)]
        assert selections == [0, 1, 2, 0, 1, 2]

    def test_clone_is_independent(self):
        partitioner = RebalancePartitioner()
        partitioner.select(Record(0), 3, 0)
        clone = partitioner.clone()
        assert clone is not partitioner
        assert clone.select(Record(0), 3, 0) == (0,)

    def test_cursor_snapshot_and_restore(self):
        partitioner = RebalancePartitioner()
        for i in range(5):
            partitioner.select(Record(i), 3, 0)
        state = partitioner.snapshot_state()
        assert state == {"next": 5}
        # A few more selections after the cut, then roll back.
        partitioner.select(Record(9), 3, 0)
        fresh = RebalancePartitioner()
        fresh.restore_state(state)
        assert fresh.select(Record(0), 3, 0) == (5 % 3,)

    def test_advance_reserves_batch_slots(self):
        partitioner = RebalancePartitioner()
        cursor = partitioner.advance(4)
        assert cursor == 0
        assert partitioner.select(Record(0), 3, 0) == (4 % 3,)


class TestBroadcast:
    def test_all_channels(self):
        partitioner = BroadcastPartitioner()
        assert partitioner.select(Record(1), 3, 0) == (0, 1, 2)


class TestGlobal:
    def test_always_channel_zero(self):
        partitioner = GlobalPartitioner()
        assert partitioner.select(Record(1), 5, 4) == (0,)
