"""Unit tests for durable checksummed checkpoint persistence.

Every corruption mode the chaos harness can inflict -- flipped bytes,
truncation, a deleted snapshot, a torn directory with no manifest, a
garbage manifest -- must be *detected* by the verified-restore path and
survived by falling back to the next-oldest intact checkpoint.
"""

import json
import os

import pytest

from repro.state.checkpoint import CompletedCheckpoint, TaskSnapshot
from repro.state.durable import (
    CheckpointCorruptionError,
    DurableCheckpointStore,
    read_snapshot_file,
    write_snapshot_file,
)


def snap(op="op", index=0, total=0):
    return TaskSnapshot(("1-%s" % op, index), {"sum": {"k": total}})


def completed(checkpoint_id, total=0):
    snapshots = {}
    for index in range(2):
        one = snap(index=index, total=total + index)
        snapshots[one.subtask] = one
    return CompletedCheckpoint(checkpoint_id, snapshots,
                               trigger_time=checkpoint_id * 10,
                               completion_time=checkpoint_id * 10 + 5)


class TestSnapshotFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "one.snap")
        entry = write_snapshot_file(path, snap(total=42))
        restored = read_snapshot_file(path, expected_crc=entry["crc32"])
        assert restored.keyed_state == {"sum": {"k": 42}}
        assert tuple(entry["subtask"]) == restored.subtask

    def test_flipped_byte_detected(self, tmp_path):
        path = str(tmp_path / "one.snap")
        write_snapshot_file(path, snap())
        with open(path, "r+b") as handle:
            blob = handle.read()
            handle.seek(len(blob) // 2)
            handle.write(bytes([blob[len(blob) // 2] ^ 0xFF]))
        with pytest.raises(CheckpointCorruptionError):
            read_snapshot_file(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "one.snap")
        write_snapshot_file(path, snap())
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with pytest.raises(CheckpointCorruptionError, match="torn"):
            read_snapshot_file(path)

    def test_missing_file_detected(self, tmp_path):
        with pytest.raises(CheckpointCorruptionError, match="unreadable"):
            read_snapshot_file(str(tmp_path / "absent.snap"))

    def test_manifest_crc_disagreement_detected(self, tmp_path):
        path = str(tmp_path / "one.snap")
        entry = write_snapshot_file(path, snap())
        with pytest.raises(CheckpointCorruptionError, match="manifest"):
            read_snapshot_file(path, expected_crc=entry["crc32"] ^ 1)


class TestStore:
    def test_persists_and_restores(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1, total=10))
        store.add(completed(2, total=20))
        assert store.persisted_ids() == [1, 2]
        restored = store.load_latest_verified()
        assert restored.checkpoint_id == 2
        one = restored.snapshots[("1-op", 0)]
        assert one.keyed_state == {"sum": {"k": 20}}
        assert store.restore_fallbacks == 0

    def test_retention_gc(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=2)
        for checkpoint_id in (1, 2, 3, 4):
            store.add(completed(checkpoint_id))
        assert store.persisted_ids() == [3, 4]

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1, total=10))
        store.add(completed(2, total=20))
        victim = os.path.join(str(tmp_path), "chk-2", "subtask-0.snap")
        with open(victim, "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff\xff\xff\xff")
        restored = store.load_latest_verified()
        assert restored.checkpoint_id == 1
        assert store.corruptions_detected == 1
        assert store.restore_fallbacks == 1
        # The corrupt checkpoint was deleted, not retried forever.
        assert store.persisted_ids() == [1]
        assert store.latest.checkpoint_id == 1

    def test_missing_snapshot_file_falls_back(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1))
        store.add(completed(2))
        os.remove(os.path.join(str(tmp_path), "chk-2", "subtask-1.snap"))
        assert store.load_latest_verified().checkpoint_id == 1
        assert store.corruptions_detected == 1

    def test_garbage_manifest_falls_back(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1))
        store.add(completed(2))
        manifest = os.path.join(str(tmp_path), "chk-2", "manifest.json")
        with open(manifest, "w") as handle:
            handle.write("{not json")
        assert store.load_latest_verified().checkpoint_id == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1))
        with open(os.path.join(str(tmp_path), "chk-1", "subtask-0.snap"),
                  "w") as handle:
            handle.write("garbage")
        assert store.load_latest_verified() is None
        assert store.corruptions_detected == 1

    def test_torn_directory_without_manifest_is_ignored(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1))
        torn = os.path.join(str(tmp_path), "chk-9")
        os.makedirs(torn)
        write_snapshot_file(os.path.join(torn, "subtask-0.snap"), snap())
        assert store.persisted_ids() == [1]
        assert store.load_latest_verified().checkpoint_id == 1

    def test_manifest_subtask_cross_check(self, tmp_path):
        """A snapshot file swapped in from another subtask has a valid
        CRC but the wrong identity -- the manifest catches it."""
        store = DurableCheckpointStore(str(tmp_path), max_retained=3)
        store.add(completed(1))
        target = os.path.join(str(tmp_path), "chk-1")
        manifest_path = os.path.join(target, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        entry = manifest["snapshots"][0]
        imposter = snap(index=5)
        imposter_entry = write_snapshot_file(
            os.path.join(target, entry["file"]), imposter)
        entry["crc32"] = imposter_entry["crc32"]
        entry["length"] = imposter_entry["length"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CheckpointCorruptionError, match="manifest"):
            store.load_verified(1)

    def test_fresh_store_wipes_stale_job_artifacts(self, tmp_path):
        first = DurableCheckpointStore(str(tmp_path), max_retained=3)
        first.add(completed(1))
        second = DurableCheckpointStore(str(tmp_path), max_retained=3)
        assert second.persisted_ids() == []
        assert second.load_latest_verified() is None

    def test_durability_stats(self, tmp_path):
        store = DurableCheckpointStore(str(tmp_path), max_retained=2)
        for checkpoint_id in (1, 2, 3):
            store.add(completed(checkpoint_id))
        stats = store.durability_stats()
        assert stats == {"persisted": 3, "retained_on_disk": 2,
                         "corruptions_detected": 0, "restore_fallbacks": 0}
