"""API-surface tests: environment helpers, plan explanation, validation."""

import pytest

from repro.api import StreamExecutionEnvironment


class TestEnvironment:
    def test_generate_sequence(self):
        env = StreamExecutionEnvironment(parallelism=2)
        result = env.generate_sequence(5, 15).collect()
        env.execute()
        assert sorted(result.get()) == list(range(5, 15))

    def test_generate_sequence_validation(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(ValueError):
            env.generate_sequence(10, 5)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            StreamExecutionEnvironment(parallelism=0)

    def test_explain_before_execute(self):
        env = StreamExecutionEnvironment(parallelism=2)
        env.from_collection([1, 2]).map(lambda x: x).collect()
        plan = env.explain()
        assert "collection-source" in plan
        assert "parallelism=2" in plan

    def test_source_parallelism_override(self):
        env = StreamExecutionEnvironment(parallelism=4)
        stream = env.from_source(lambda: range(10), parallelism=1,
                                 name="narrow")
        assert stream.node.parallelism == 1
        result = stream.collect()
        env.execute()
        assert sorted(result.get()) == list(range(10))

    def test_last_engine_available_after_execute(self):
        env = StreamExecutionEnvironment()
        assert env.last_engine is None
        env.from_collection([1]).collect()
        env.execute()
        assert env.last_engine is not None
        assert all(task.finished for task in env.last_engine.tasks)

    def test_from_collection_is_replay_safe(self):
        """The source materialises the input, so a consumed iterator
        still yields a complete stream."""
        env = StreamExecutionEnvironment(parallelism=2)
        result = env.from_collection(iter(range(20))).collect()
        env.execute()
        assert sorted(result.get()) == list(range(20))


class TestStreamNames:
    def test_custom_operator_names_in_plan(self):
        env = StreamExecutionEnvironment()
        (env.from_collection([1])
         .map(lambda x: x, name="enrich")
         .filter(bool, name="drop-nulls")
         .collect(name="out"))
        plan = env.explain()
        for name in ("enrich", "drop-nulls", "out"):
            assert name in plan


class TestCollectVariants:
    def test_collect_with_timestamps(self):
        env = StreamExecutionEnvironment()
        result = (env.from_collection([("a", 5), ("b", 9)],
                                      timestamped=True)
                  .collect(with_timestamps=True))
        env.execute()
        assert sorted(result.get()) == [("a", 5), ("b", 9)]

    def test_multiple_collects_one_job(self):
        env = StreamExecutionEnvironment()
        source = env.from_collection(range(10))
        evens = source.filter(lambda x: x % 2 == 0).collect()
        odds = source.filter(lambda x: x % 2 == 1).collect()
        env.execute()
        assert sorted(evens.get()) == [0, 2, 4, 6, 8]
        assert sorted(odds.get()) == [1, 3, 5, 7, 9]

    def test_len_before_and_after(self):
        env = StreamExecutionEnvironment()
        result = env.from_collection([1, 2, 3]).collect()
        assert len(result) == 0
        env.execute()
        assert len(result) == 3
