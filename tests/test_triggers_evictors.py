"""Unit tests for triggers and evictors (isolated from the operator)."""

import pytest

from repro.windowing import (
    CountEvictor,
    CountTrigger,
    EventTimeTrigger,
    ProcessingTimeTrigger,
    PurgingTrigger,
    TimeEvictor,
    TimeWindow,
    TriggerContext,
    TriggerResult,
)


class RecordingTriggerContext(TriggerContext):
    def __init__(self):
        self.event_timers = []
        self.deleted = []
        self.processing_timers = []
        super().__init__(
            register_event_timer=self.event_timers.append,
            delete_event_timer=self.deleted.append,
            register_processing_timer=self.processing_timers.append,
            trigger_state={},
        )


class TestEventTimeTrigger:
    def test_registers_timer_at_max_timestamp(self):
        trigger = EventTimeTrigger()
        ctx = RecordingTriggerContext()
        window = TimeWindow(0, 100)
        result = trigger.on_element("v", 5, window, ctx)
        assert result == TriggerResult.CONTINUE
        assert ctx.event_timers == [99]

    def test_fires_only_at_or_after_max_timestamp(self):
        trigger = EventTimeTrigger()
        ctx = RecordingTriggerContext()
        window = TimeWindow(0, 100)
        assert trigger.on_event_time(50, window, ctx) == TriggerResult.CONTINUE
        assert trigger.on_event_time(99, window, ctx) == TriggerResult.FIRE

    def test_clear_deletes_timer(self):
        trigger = EventTimeTrigger()
        ctx = RecordingTriggerContext()
        trigger.clear(TimeWindow(0, 100), ctx)
        assert ctx.deleted == [99]


class TestProcessingTimeTrigger:
    def test_fire_and_purge_at_deadline(self):
        trigger = ProcessingTimeTrigger()
        ctx = RecordingTriggerContext()
        window = TimeWindow(0, 10)
        trigger.on_element("v", 1, window, ctx)
        assert ctx.processing_timers == [9]
        assert (trigger.on_processing_time(9, window, ctx)
                == TriggerResult.FIRE_AND_PURGE)


class TestCountTrigger:
    def test_fires_every_n_elements(self):
        trigger = CountTrigger(3)
        ctx = RecordingTriggerContext()
        window = object()
        results = [trigger.on_element(i, 0, window, ctx) for i in range(6)]
        assert results == [TriggerResult.CONTINUE, TriggerResult.CONTINUE,
                           TriggerResult.FIRE_AND_PURGE,
                           TriggerResult.CONTINUE, TriggerResult.CONTINUE,
                           TriggerResult.FIRE_AND_PURGE]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            CountTrigger(0)


class TestPurgingTrigger:
    def test_upgrades_fire(self):
        trigger = PurgingTrigger.of(EventTimeTrigger())
        ctx = RecordingTriggerContext()
        window = TimeWindow(0, 10)
        assert (trigger.on_event_time(9, window, ctx)
                == TriggerResult.FIRE_AND_PURGE)

    def test_leaves_continue_alone(self):
        trigger = PurgingTrigger.of(EventTimeTrigger())
        ctx = RecordingTriggerContext()
        assert (trigger.on_event_time(1, TimeWindow(0, 10), ctx)
                == TriggerResult.CONTINUE)


class TestTriggerResult:
    def test_flags(self):
        assert TriggerResult.FIRE.fires and not TriggerResult.FIRE.purges
        assert TriggerResult.FIRE_AND_PURGE.fires
        assert TriggerResult.FIRE_AND_PURGE.purges
        assert TriggerResult.PURGE.purges and not TriggerResult.PURGE.fires
        assert not TriggerResult.CONTINUE.fires


class TestCountEvictor:
    def test_keeps_last_n(self):
        evictor = CountEvictor.of(2)
        elements = [(1, 10), (2, 20), (3, 30)]
        assert evictor.evict_before(elements, None, 0) == [(2, 20), (3, 30)]

    def test_short_buffer_untouched(self):
        evictor = CountEvictor.of(5)
        elements = [(1, 10)]
        assert evictor.evict_before(elements, None, 0) == [(1, 10)]


class TestTimeEvictor:
    def test_drops_elements_older_than_window(self):
        evictor = TimeEvictor.of(15)
        elements = [(1, 0), (2, 10), (3, 20)]
        # newest=20, cutoff=5: element at ts 0 dropped
        assert evictor.evict_before(elements, None, 0) == [(2, 10), (3, 20)]

    def test_empty(self):
        assert TimeEvictor.of(10).evict_before([], None, 0) == []
