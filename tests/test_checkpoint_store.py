"""Unit tests for checkpoint bookkeeping (pending/completed/store)."""

import pytest

from repro.state.checkpoint import (
    CheckpointStore,
    PendingCheckpoint,
    TaskSnapshot,
)


def snap(operator="op", index=0):
    return TaskSnapshot((operator, index), keyed_state={})


class TestPendingCheckpoint:
    def test_completes_when_all_ack(self):
        pending = PendingCheckpoint(1, {("op", 0), ("op", 1)}, trigger_time=0)
        assert not pending.is_complete
        pending.acknowledge(snap(index=0))
        assert pending.pending_subtasks == {("op", 1)}
        pending.acknowledge(snap(index=1))
        assert pending.is_complete

    def test_unexpected_ack_rejected(self):
        pending = PendingCheckpoint(1, {("op", 0)}, trigger_time=0)
        with pytest.raises(ValueError):
            pending.acknowledge(snap(operator="other"))

    def test_seal_requires_completion(self):
        pending = PendingCheckpoint(1, {("op", 0)}, trigger_time=0)
        with pytest.raises(RuntimeError):
            pending.seal(completion_time=5)

    def test_seal_produces_completed_with_duration(self):
        pending = PendingCheckpoint(7, {("op", 0)}, trigger_time=10)
        pending.acknowledge(snap())
        completed = pending.seal(completion_time=25)
        assert completed.checkpoint_id == 7
        assert completed.duration_ms == 15
        assert completed.snapshot_for(("op", 0)) is not None
        assert completed.snapshot_for(("op", 9)) is None

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            PendingCheckpoint(1, set(), trigger_time=0)


class TestCheckpointStore:
    def _completed(self, checkpoint_id):
        pending = PendingCheckpoint(checkpoint_id, {("op", 0)}, trigger_time=0)
        pending.acknowledge(snap())
        return pending.seal(completion_time=1)

    def test_latest_wins(self):
        store = CheckpointStore(max_retained=3)
        for checkpoint_id in (1, 2, 3):
            store.add(self._completed(checkpoint_id))
        assert store.latest.checkpoint_id == 3

    def test_retention_evicts_oldest(self):
        store = CheckpointStore(max_retained=2)
        for checkpoint_id in (1, 2, 3):
            store.add(self._completed(checkpoint_id))
        retained = [c.checkpoint_id for c in store.all_retained]
        assert retained == [2, 3]

    def test_empty_store(self):
        store = CheckpointStore()
        assert store.latest is None
        assert len(store) == 0

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError):
            CheckpointStore(max_retained=0)
