"""Unit tests for window types, assigners and merge logic."""

import pytest

from repro.windowing import (
    EventTimeSessionWindows,
    GlobalWindow,
    GlobalWindows,
    SlidingEventTimeWindows,
    TimeWindow,
    TumblingEventTimeWindows,
    merge_windows,
)


class TestTimeWindow:
    def test_max_timestamp(self):
        assert TimeWindow(0, 10).max_timestamp == 9

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(10, 10)

    def test_intersects_includes_touching(self):
        assert TimeWindow(0, 10).intersects(TimeWindow(10, 20))
        assert TimeWindow(0, 10).intersects(TimeWindow(5, 15))
        assert not TimeWindow(0, 10).intersects(TimeWindow(11, 20))

    def test_cover(self):
        assert TimeWindow(0, 10).cover(TimeWindow(5, 20)) == TimeWindow(0, 20)

    def test_contains_half_open(self):
        window = TimeWindow(10, 20)
        assert window.contains(10)
        assert window.contains(19)
        assert not window.contains(20)

    def test_ordering_and_hash(self):
        assert TimeWindow(0, 5) < TimeWindow(1, 2)
        assert hash(TimeWindow(0, 5)) == hash(TimeWindow(0, 5))


class TestTumblingAssigner:
    def test_assigns_single_window(self):
        assigner = TumblingEventTimeWindows.of(10)
        assert assigner.assign(None, 25) == [TimeWindow(20, 30)]

    def test_boundary_belongs_to_next_window(self):
        assigner = TumblingEventTimeWindows.of(10)
        assert assigner.assign(None, 20) == [TimeWindow(20, 30)]

    def test_offset(self):
        assigner = TumblingEventTimeWindows.of(10, offset=3)
        assert assigner.assign(None, 25) == [TimeWindow(23, 33)]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TumblingEventTimeWindows.of(0)
        with pytest.raises(ValueError):
            TumblingEventTimeWindows.of(10, offset=10)


class TestSlidingAssigner:
    def test_assigns_size_over_slide_windows(self):
        assigner = SlidingEventTimeWindows.of(10, 5)
        windows = assigner.assign(None, 12)
        assert sorted(windows) == [TimeWindow(5, 15), TimeWindow(10, 20)]

    def test_element_in_every_containing_window(self):
        assigner = SlidingEventTimeWindows.of(20, 5)
        windows = assigner.assign(None, 33)
        assert len(windows) == 4
        for window in windows:
            assert window.contains(33)

    def test_slide_larger_than_size_rejected(self):
        with pytest.raises(ValueError):
            SlidingEventTimeWindows.of(5, 10)

    def test_equal_size_and_slide_is_tumbling(self):
        assigner = SlidingEventTimeWindows.of(10, 10)
        assert assigner.assign(None, 25) == [TimeWindow(20, 30)]


class TestSessionAssigner:
    def test_proto_window_spans_gap(self):
        assigner = EventTimeSessionWindows.with_gap(30)
        assert assigner.assign(None, 100) == [TimeWindow(100, 130)]
        assert assigner.is_merging

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            EventTimeSessionWindows.with_gap(0)


class TestGlobalWindows:
    def test_single_global_window(self):
        assigner = GlobalWindows.create()
        [window] = assigner.assign(None, 5)
        assert isinstance(window, GlobalWindow)
        assert not assigner.is_event_time

    def test_global_window_is_singleton(self):
        assert GlobalWindow() is GlobalWindow()


class TestMergeWindows:
    def test_disjoint_windows_stay_apart(self):
        groups = merge_windows([TimeWindow(0, 10), TimeWindow(20, 30)])
        assert len(groups) == 2

    def test_overlapping_windows_group(self):
        groups = merge_windows([TimeWindow(0, 10), TimeWindow(5, 15),
                                TimeWindow(12, 20)])
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_touching_windows_group(self):
        groups = merge_windows([TimeWindow(0, 10), TimeWindow(10, 20)])
        assert len(groups) == 1

    def test_transitive_merging_through_middle_window(self):
        # [0,10) and [18,30) only merge because [8,20) bridges them.
        groups = merge_windows([TimeWindow(0, 10), TimeWindow(18, 30),
                                TimeWindow(8, 20)])
        assert len(groups) == 1

    def test_empty_input(self):
        assert merge_windows([]) == []
