"""Tests for the stream-stream window join and HyperLogLog."""

import random

import pytest

from repro.api import StreamExecutionEnvironment
from repro.ml.hll import HyperLogLog
from repro.windowing import TumblingEventTimeWindows
from repro.windowing.join import WindowJoinOperator
from repro.windowing.assigners import (
    EventTimeSessionWindows,
    GlobalWindows,
)


class TestWindowJoin:
    def test_joins_within_window_and_key(self):
        env = StreamExecutionEnvironment()
        impressions = env.from_collection(
            [(("u1", "adA"), 10), (("u2", "adB"), 20), (("u1", "adC"), 120)],
            timestamped=True)
        clicks = env.from_collection(
            [(("u1", "click1"), 50), (("u1", "click2"), 130),
             (("u3", "clickX"), 40)],
            timestamped=True)
        result = impressions.window_join(
            clicks,
            left_key=lambda v: v[0],
            right_key=lambda v: v[0],
            assigner=TumblingEventTimeWindows.of(100),
            join_fn=lambda imp, click: (imp[0], imp[1], click[1])).collect()
        env.execute()
        # Window [0,100): u1 impression adA joins click1; u2/u3 unmatched.
        # Window [100,200): u1 adC joins click2.
        assert sorted(result.get()) == [("u1", "adA", "click1"),
                                        ("u1", "adC", "click2")]

    def test_cross_product_within_window(self):
        env = StreamExecutionEnvironment()
        left = env.from_collection([(("k", "l%d" % i), i) for i in range(2)],
                                   timestamped=True)
        right = env.from_collection([(("k", "r%d" % i), i) for i in range(3)],
                                    timestamped=True)
        result = left.window_join(
            right, lambda v: v[0], lambda v: v[0],
            TumblingEventTimeWindows.of(100)).collect()
        env.execute()
        assert len(result.get()) == 2 * 3

    def test_state_cleared_after_firing(self):
        env = StreamExecutionEnvironment()
        left = env.from_collection([(("k", i), i * 10) for i in range(20)],
                                   timestamped=True)
        right = env.from_collection([(("k", -i), i * 10) for i in range(20)],
                                    timestamped=True)
        result = left.window_join(
            right, lambda v: v[0], lambda v: v[0],
            TumblingEventTimeWindows.of(50)).collect()
        env.execute()
        engine = env.last_engine
        join_tasks = [task for task in engine.tasks
                      if "window-join" in task.vertex_name]
        leftovers = sum(
            len(per_key)
            for task in join_tasks
            for chained in task.chain
            for state_name in ("join-left", "join-right")
            for per_key in chained.backend.table(state_name).values())
        assert leftovers == 0
        # 4 windows x 5 left x 5 right each.
        assert len(result.get()) == 4 * 25

    def test_rejects_merging_and_processing_time_windows(self):
        with pytest.raises(ValueError):
            WindowJoinOperator(EventTimeSessionWindows.with_gap(10))
        with pytest.raises(ValueError):
            WindowJoinOperator(GlobalWindows.create())


class TestHyperLogLog:
    def test_estimate_within_error_bound(self):
        hll = HyperLogLog(precision=12)
        true_cardinality = 50_000
        for index in range(true_cardinality):
            hll.add("item-%d" % index)
        estimate = hll.estimate()
        tolerance = 4 * hll.standard_error * true_cardinality
        assert abs(estimate - true_cardinality) < tolerance

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(precision=12)
        for _ in range(10):
            for index in range(1000):
                hll.add(index)
        assert abs(hll.estimate() - 1000) < 1000 * 0.1

    def test_small_cardinalities_use_linear_counting(self):
        hll = HyperLogLog(precision=12)
        for index in range(10):
            hll.add(index)
        assert abs(hll.estimate() - 10) < 2

    def test_merge_equals_union(self):
        a, b = HyperLogLog(10), HyperLogLog(10)
        for index in range(5000):
            (a if index % 2 else b).add(index)
        merged = a.merge(b)
        assert abs(merged.estimate() - 5000) < 5000 * 0.15

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)

    def test_empty_estimate_is_zero(self):
        assert HyperLogLog().estimate() == 0
