"""Unit tests for stream elements."""

from repro.runtime.elements import (
    END_OF_STREAM,
    MAX_TIMESTAMP,
    MAX_WATERMARK,
    CheckpointBarrier,
    EndOfStream,
    Record,
    Watermark,
)


class TestRecord:
    def test_kind_flags(self):
        record = Record(1, 10)
        assert record.is_record
        assert not record.is_watermark
        assert not record.is_barrier
        assert not record.is_end

    def test_with_value_preserves_timestamp_and_key(self):
        record = Record("x", 42, key="k")
        derived = record.with_value("y")
        assert derived.value == "y"
        assert derived.timestamp == 42
        assert derived.key == "k"
        assert record.value == "x"  # original untouched

    def test_equality(self):
        assert Record(1, 2) == Record(1, 2)
        assert Record(1, 2) != Record(1, 3)
        assert Record(1, 2, key="a") != Record(1, 2, key="b")

    def test_timestamp_optional(self):
        assert Record("v").timestamp is None


class TestWatermark:
    def test_kind_flags(self):
        watermark = Watermark(5)
        assert watermark.is_watermark
        assert not watermark.is_record

    def test_equality_and_hash(self):
        assert Watermark(5) == Watermark(5)
        assert hash(Watermark(5)) == hash(Watermark(5))
        assert Watermark(5) != Watermark(6)

    def test_max_watermark_repr(self):
        assert "MAX" in repr(MAX_WATERMARK)
        assert MAX_WATERMARK.timestamp == MAX_TIMESTAMP


class TestBarrierAndEnd:
    def test_barrier(self):
        barrier = CheckpointBarrier(3)
        assert barrier.is_barrier
        assert barrier == CheckpointBarrier(3)
        assert barrier != CheckpointBarrier(4)

    def test_end_of_stream_singletonish(self):
        assert END_OF_STREAM.is_end
        assert END_OF_STREAM == EndOfStream()
