"""Tests for the extension features: event-time reordering, the
shared_windows public API, composed (multi-measure) aggregates, and the
late-data side output."""

import random

import pytest

from repro.api import StreamExecutionEnvironment
from repro.cutty import CuttyAggregator, PeriodicWindows, SessionWindows
from repro.metrics import AggregationCostCounter
from repro.runtime.elements import Record
from repro.runtime.reorder import WatermarkReorderOperator
from repro.time.watermarks import WatermarkStrategy
from repro.windowing import (
    ComposedAggregate,
    CountAggregate,
    MaxAggregate,
    SlidingEventTimeWindows,
    SumAggregate,
    TumblingEventTimeWindows,
)


class TestWatermarkReorder:
    def test_reorders_within_watermark_bound(self):
        env = StreamExecutionEnvironment()
        data = [("a", 30), ("b", 10), ("c", 20), ("d", 60), ("e", 40)]
        strategy = WatermarkStrategy.for_bounded_out_of_orderness(
            lambda v: v[1], 30)
        stream = (env.from_collection(data)
                  .assign_timestamps_and_watermarks(strategy))
        node = stream._connect("reorder", WatermarkReorderOperator)
        from repro.api.stream import DataStream
        result = DataStream(env, node).collect(with_timestamps=True)
        env.execute()
        timestamps = [ts for _, ts in result.get()]
        assert timestamps == sorted(timestamps)
        assert len(timestamps) == len(data)

    def test_requires_timestamps(self):
        env = StreamExecutionEnvironment()
        stream = env.from_collection([1, 2, 3])
        node = stream._connect("reorder", WatermarkReorderOperator)
        from repro.api.stream import DataStream
        DataStream(env, node).collect()
        with pytest.raises(ValueError):
            env.execute()

    def test_snapshot_restore(self):
        operator = WatermarkReorderOperator()

        class _Metrics:
            @staticmethod
            def gauge(name):
                from repro.metrics import Gauge
                return Gauge(name)

        class _Ctx:
            metrics = _Metrics()

        operator.open(_Ctx())
        operator.process(Record("late", 5))
        operator.process(Record("later", 9))
        state = operator.snapshot_state()

        restored = WatermarkReorderOperator()
        emitted = []
        restored.open(_Ctx())
        restored.ctx.emit_record = emitted.append
        restored.restore_state(state)
        restored.on_watermark(10)
        assert [record.timestamp for record in emitted] == [5, 9]


class TestSharedWindowsApi:
    def _events(self, n=300, seed=3, disorder=25):
        """Per-key streams with bounded out-of-orderness."""
        rng = random.Random(seed)
        events = []
        for index in range(n):
            true_ts = index * 10
            observed_order = true_ts + rng.randint(0, disorder)
            events.append((observed_order, ("k%d" % (index % 3), 1, true_ts)))
        events.sort(key=lambda pair: pair[0])  # arrival order
        return [value for _, value in events]

    def test_shared_windows_matches_standard_operator_with_reorder(self):
        data = self._events()
        strategy = WatermarkStrategy.for_bounded_out_of_orderness(
            lambda v: v[2], 30)

        env1 = StreamExecutionEnvironment(parallelism=2)
        standard = (env1.from_collection(data)
                    .assign_timestamps_and_watermarks(strategy)
                    .key_by(lambda v: v[0])
                    .window(SlidingEventTimeWindows.of(200, 100))
                    .aggregate(CountAggregate())
                    .collect())
        env1.execute()
        expected = {(r.key, r.window.start): r.value
                    for r in standard.get()}

        env2 = StreamExecutionEnvironment(parallelism=2)
        shared = (env2.from_collection(data)
                  .assign_timestamps_and_watermarks(strategy)
                  .key_by(lambda v: v[0])
                  .shared_windows(
                      CountAggregate,
                      {"q": lambda: PeriodicWindows(200, 100)},
                      reorder=True)
                  .collect())
        env2.execute()
        actual = {(r.key, r.start): r.value for r in shared.get()}
        assert actual == expected

    def test_shared_windows_without_reorder_on_ordered_stream(self):
        data = [(("k", 1), ts) for ts in range(0, 1000, 10)]
        env = StreamExecutionEnvironment()
        results = (env.from_collection(data, timestamped=True)
                   .key_by(lambda v: v[0])
                   .shared_windows(
                       CountAggregate,
                       {"tumbling": lambda: PeriodicWindows(100),
                        "session": lambda: SessionWindows(50)})
                   .collect())
        env.execute()
        by_query = {}
        for result in results.get():
            by_query.setdefault(result.query_id, []).append(result)
        assert len(by_query["tumbling"]) == 10
        assert len(by_query["session"]) == 1  # gaps of 10 never close it

    def test_shared_windows_counter_is_exposed(self):
        counter = AggregationCostCounter()
        data = [(("k", 1), ts) for ts in range(0, 500, 5)]
        env = StreamExecutionEnvironment()
        (env.from_collection(data, timestamped=True)
         .key_by(lambda v: v[0])
         .shared_windows(CountAggregate,
                         {"a": lambda: PeriodicWindows(100, 50),
                          "b": lambda: PeriodicWindows(200, 100)},
                         counter=counter)
         .collect())
        env.execute()
        assert counter.lifts.value == len(data)  # one lift per record


class TestComposedAggregate:
    def test_multi_measure_results(self):
        aggregate = ComposedAggregate({"sum": SumAggregate(),
                                       "max": MaxAggregate(),
                                       "count": CountAggregate()})
        acc = aggregate.create_accumulator()
        for value in (3, 9, 1):
            acc = aggregate.add(value, acc)
        assert aggregate.get_result(acc) == {"sum": 13, "max": 9, "count": 3}

    def test_merge(self):
        aggregate = ComposedAggregate({"sum": SumAggregate(),
                                       "max": MaxAggregate()})
        left = aggregate.add(5, aggregate.create_accumulator())
        right = aggregate.add(7, aggregate.create_accumulator())
        assert aggregate.get_result(aggregate.merge(left, right)) == \
            {"sum": 12, "max": 7}

    def test_invertibility_is_conjunctive(self):
        assert ComposedAggregate({"s": SumAggregate(),
                                  "c": CountAggregate()}).invertible
        mixed = ComposedAggregate({"s": SumAggregate(),
                                   "m": MaxAggregate()})
        assert not mixed.invertible
        with pytest.raises(NotImplementedError):
            mixed.retract(1, mixed.create_accumulator())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ComposedAggregate({})

    def test_one_lift_for_many_measures_through_cutty(self):
        counter = AggregationCostCounter()
        aggregate = ComposedAggregate({"sum": SumAggregate(),
                                       "max": MaxAggregate(),
                                       "count": CountAggregate()})
        aggregator = CuttyAggregator(aggregate, PeriodicWindows(100, 20),
                                     counter)
        stream = [(v, v * 2) for v in range(500)]
        results = []
        for value, ts in stream:
            results.extend(aggregator.insert(value, ts))
        results.extend(aggregator.flush())
        # One lift per record computes all three measures.
        assert counter.lifts.value == len(stream)
        assert all(set(result.value) == {"sum", "max", "count"}
                   for result in results)
        # Spot-check one window against brute force.
        window = next(r for r in results if r.start == 100)
        values = [v for v, ts in stream if 100 <= ts < 200]
        assert window.value == {"sum": sum(values), "max": max(values),
                                "count": len(values)}


class TestLateDataSideOutput:
    def test_late_records_emitted_with_tag(self):
        env = StreamExecutionEnvironment()
        data = [("k", 10), ("k", 100), ("k", 5), ("k", 200)]  # 5 is late
        strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
        results = (env.from_collection(data)
                   .assign_timestamps_and_watermarks(strategy)
                   .key_by(lambda v: v[0])
                   .window(TumblingEventTimeWindows.of(50))
                   .side_output_late_data("LATE")
                   .aggregate(CountAggregate())
                   .collect())
        env.execute()
        late = [value for value in results.get()
                if isinstance(value, tuple) and value[0] == "LATE"]
        windows = [value for value in results.get()
                   if not (isinstance(value, tuple) and value[0] == "LATE")]
        assert late == [("LATE", ("k", 5))]
        assert sum(w.value for w in windows) == 3  # on-time records only

    def test_no_tag_drops_silently(self):
        env = StreamExecutionEnvironment()
        data = [("k", 10), ("k", 100), ("k", 5)]
        strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
        results = (env.from_collection(data)
                   .assign_timestamps_and_watermarks(strategy)
                   .key_by(lambda v: v[0])
                   .window(TumblingEventTimeWindows.of(50))
                   .aggregate(CountAggregate())
                   .collect())
        env.execute()
        assert all(not isinstance(v, tuple) or v[0] != "LATE"
                   for v in results.get())

    def test_allowed_lateness_admits_stragglers(self):
        env = StreamExecutionEnvironment()
        # Watermark reaches 100 after the second record; ts=5 is within
        # an allowed lateness of 200 -> window [0,50) refires updated.
        data = [("k", 10), ("k", 100), ("k", 5), ("k", 400)]
        strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
        results = (env.from_collection(data)
                   .assign_timestamps_and_watermarks(strategy)
                   .key_by(lambda v: v[0])
                   .window(TumblingEventTimeWindows.of(50))
                   .allowed_lateness(200)
                   .aggregate(CountAggregate())
                   .collect())
        env.execute()
        first_window_counts = [r.value for r in results.get()
                               if r.window.start == 0]
        # Initial firing with 1 record, refined firing with 2.
        assert 2 in first_window_counts


class TestContinuousEventTimeTrigger:
    def _run(self, interval):
        from repro.windowing import (
            ContinuousEventTimeTrigger,
            CountAggregate,
            TumblingEventTimeWindows,
        )
        env = StreamExecutionEnvironment()
        data = [("k", ts) for ts in range(0, 200, 10)]
        strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
        results = (env.from_collection(data)
                   .assign_timestamps_and_watermarks(strategy)
                   .key_by(lambda v: v[0])
                   .window(TumblingEventTimeWindows.of(100))
                   .trigger(ContinuousEventTimeTrigger(interval))
                   .aggregate(CountAggregate())
                   .collect())
        env.execute()
        return results.get()

    def test_early_firings_refine_towards_final(self):
        results = self._run(interval=30)
        first_window = [r.value for r in results if r.window.start == 0]
        # Several firings, non-decreasing counts, final value correct.
        assert len(first_window) > 1
        assert first_window == sorted(first_window)
        assert first_window[-1] == 10

    def test_final_results_match_default_trigger(self):
        from repro.windowing import CountAggregate, TumblingEventTimeWindows
        results = self._run(interval=25)
        finals = {}
        for r in results:
            finals[r.window.start] = r.value  # last firing wins
        assert finals == {0: 10, 100: 10}

    def test_validation(self):
        from repro.windowing import ContinuousEventTimeTrigger
        with pytest.raises(ValueError):
            ContinuousEventTimeTrigger(0)
