"""Integration tests for the exactly-once (two-phase-commit) file sinks.

The contract under test: the visible target file only ever contains the
records of committed transactions, a job killed mid-flight leaves a
clean committed prefix (never a torn suffix), and a job that crashes and
recovers from a checkpoint produces *exactly* the failure-free output --
no duplicates from replay, no holes from the crash.
"""

import glob
import os

import pytest

from repro.api import StreamExecutionEnvironment
from repro.connectors import (
    TransactionalCsvFileSink,
    TransactionalJsonlFileSink,
    TransactionalTextFileSink,
)
from repro.runtime.engine import EngineConfig
from repro.runtime.faults import SUBTASK_FAILURE, ChaosInjector, FaultEvent
from repro.runtime.restart import FixedDelayRestart


def read_lines(path):
    with open(path) as handle:
        return handle.read().splitlines()


def assert_no_leftovers(path):
    assert not os.path.exists(path + ".tmp")
    assert glob.glob(glob.escape(path) + ".pending-*") == []


class TestTwoPhaseCommitProtocol:
    """Driving the sink by hand, without an engine."""

    def test_pre_commit_persists_sideways_then_commit_publishes(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        sink.open()
        sink.write("a")
        sink.write("b")
        assert read_lines(path) == []  # buffered, nothing visible

        sink.pre_commit(1)
        assert read_lines(path) == []  # pre-committed, still not visible
        assert read_lines(path + ".pending-1") == ["a", "b"]

        sink.commit_through(1)
        assert read_lines(path) == ["a", "b"]
        assert_no_leftovers(path)
        assert sink.transactions_committed == 1

    def test_commit_through_is_idempotent_and_ordered(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        sink.open()
        sink.write("a")
        sink.pre_commit(1)
        sink.write("b")
        sink.pre_commit(2)
        sink.commit_through(2)  # commits 1 then 2
        assert read_lines(path) == ["a", "b"]
        sink.commit_through(2)  # replayed notification: no-op
        assert read_lines(path) == ["a", "b"]
        assert sink.transactions_committed == 2

    def test_abort_discards_transaction(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        sink.open()
        sink.write("doomed")
        sink.pre_commit(1)
        sink.abort(1)
        sink.commit_through(1)
        assert read_lines(path) == []
        assert_no_leftovers(path)
        assert sink.transactions_aborted == 1

    def test_recover_commits_durable_and_aborts_the_rest(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        sink.open()
        sink.write("durable")
        sink.pre_commit(1)
        sink.write("after-cut")
        sink.pre_commit(2)
        sink.write("in-buffer")
        # The restored checkpoint only knew about txn 1: txn 2 and the
        # open buffer lie beyond the replay point and must vanish.
        sink.recover([1])
        assert read_lines(path) == ["durable"]
        assert sink.pending_transactions() == []
        assert_no_leftovers(path)


class TestExactlyOnceThroughEngine:
    def _pipeline(self, env, sink, values=200):
        (env.from_collection(range(values))
            .map(lambda v: v * 2, name="double")
            .add_sink(sink, name="txn-sink"))

    def test_matches_plain_run_without_failures(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5, elements_per_step=4))
        self._pipeline(env, sink)
        env.execute()
        assert read_lines(path) == [str(v * 2) for v in range(200)]
        assert sink.transactions_committed >= 1
        assert_no_leftovers(path)

    def test_cancelled_job_leaves_a_committed_prefix(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)

        def cancel(engine, rounds):
            return engine._checkpoints_completed >= 2

        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5, elements_per_step=4,
                                cancel_hook=cancel))
        self._pipeline(env, sink, values=5000)
        job = env.execute()
        assert job.cancelled

        expected = [str(v * 2) for v in range(5000)]
        lines = read_lines(path)
        # A clean, non-empty, strict prefix: committed transactions only,
        # never a torn or uncommitted suffix.
        assert 0 < len(lines) < len(expected)
        assert lines == expected[:len(lines)]

        # Rerunning the job against the same path republishes in full.
        retry = TransactionalTextFileSink(path)
        env2 = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5, elements_per_step=4))
        self._pipeline(env2, retry, values=5000)
        env2.execute()
        assert read_lines(path) == expected

    def test_exactly_once_across_crash_recovery(self, tmp_path):
        def run(path, chaos=None, strategy=None):
            sink = TransactionalTextFileSink(path)
            env = StreamExecutionEnvironment(
                config=EngineConfig(checkpoint_interval_ms=5,
                                    elements_per_step=4,
                                    restart_strategy=strategy, chaos=chaos))
            data = [("k%d" % (i % 5), 1) for i in range(2000)]
            (env.from_collection(data)
                .key_by(lambda v: v[0])
                .count()
                .add_sink(sink, name="txn-sink"))
            job = env.execute()
            return read_lines(path), job

        clean, _ = run(str(tmp_path / "clean.txt"))
        recovered, job = run(
            str(tmp_path / "recovered.txt"),
            chaos=ChaosInjector([FaultEvent(150, SUBTASK_FAILURE)]),
            strategy=FixedDelayRestart(max_restarts=3, delay_ms=1))
        assert job.restarts == 1
        assert job.recoveries == 1
        # Replay re-emits records after the restored cut; an at-least-once
        # sink would show them twice.  Exactly-once output is identical.
        assert sorted(recovered) == sorted(clean)

    def test_crash_before_first_checkpoint_restarts_clean(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        chaos = ChaosInjector([FaultEvent(3, SUBTASK_FAILURE)])
        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=1000,
                                elements_per_step=4,
                                restart_strategy=FixedDelayRestart(
                                    max_restarts=3, delay_ms=1),
                                chaos=chaos))
        self._pipeline(env, sink)
        job = env.execute()
        assert job.restarts == 1
        # The from-scratch redeploy reopened the sink, wiping whatever the
        # first attempt pre-committed.
        assert read_lines(path) == [str(v * 2) for v in range(200)]
        assert_no_leftovers(path)

    def test_parallel_transactional_sink_is_rejected(self, tmp_path):
        sink = TransactionalTextFileSink(str(tmp_path / "out.txt"))
        env = StreamExecutionEnvironment(parallelism=2)
        stream = env.from_collection(range(10))
        with pytest.raises(ValueError, match="parallelism 1"):
            stream.add_sink(sink, parallelism=2)


class TestResumeReconciliation:
    """The multiprocess failure domain: the sink *object* dies with its
    worker and a fresh fork reattaches to the on-disk artifacts via
    ``resume()``.  Respawns can themselves crash and respawn, so resume
    + recover must be idempotent over the same artifacts -- and must
    close the crash windows inside ``commit_through`` (meta written but
    target unpublished; target published but side files undeleted)."""

    def _seeded_sink(self, tmp_path):
        """A sink that committed txn 1 (["a", "b"]) and holds txn 2
        (["c"]) pre-committed, then 'crashed' -- only disk survives."""
        path = str(tmp_path / "out.txt")
        sink = TransactionalTextFileSink(path)
        sink.open()
        sink.write("a")
        sink.write("b")
        sink.pre_commit(1)
        sink.commit_through(1)
        sink.write("c")
        sink.pre_commit(2)
        return path

    def test_two_consecutive_respawns_do_not_double_commit(self, tmp_path):
        path = self._seeded_sink(tmp_path)

        first = TransactionalTextFileSink(path)
        first.resume()
        first.recover([2])  # checkpoint knew txn 2 was pending: commit it
        assert read_lines(path) == ["a", "b", "c"]
        assert first.records_committed == 3

        # The respawn itself dies; a second respawn walks the same
        # artifacts.  Txn 2's side file is gone and meta says it is
        # committed, so nothing may commit twice.
        second = TransactionalTextFileSink(path)
        second.resume()
        second.recover([2])
        assert read_lines(path) == ["a", "b", "c"]
        assert second.records_committed == 3
        assert second.pending_transactions() == []
        assert_no_leftovers(path)

    def test_resume_after_crash_between_meta_and_publish(self, tmp_path):
        """Window A: meta recorded the commit but the process died
        before the target was rewritten.  The side files at or below
        committed_through hold the missing records."""
        path = self._seeded_sink(tmp_path)
        sink = TransactionalTextFileSink(path)
        sink.resume()
        # Simulate the torn commit by hand: meta + side file say txn 2
        # committed, target still shows only txn 1.
        sink._committed_through = 2
        sink._committed.append("c")
        sink._write_meta()
        sink._committed.pop()

        respawned = TransactionalTextFileSink(path)
        respawned.resume()
        assert read_lines(path) == ["a", "b", "c"]  # re-applied + published
        assert respawned.records_committed == 3
        assert respawned.pending_transactions() == []
        assert_no_leftovers(path)

    def test_resume_after_crash_between_publish_and_side_cleanup(
            self, tmp_path):
        """Window B: the target was published but the process died
        before deleting the side files.  They describe already-committed
        transactions and must be swept, never re-committed."""
        path = self._seeded_sink(tmp_path)
        sink = TransactionalTextFileSink(path)
        sink.resume()
        sink.recover([2])
        assert read_lines(path) == ["a", "b", "c"]
        # Resurrect txn 2's side file as the crash would have left it.
        with open(path + ".pending-2", "w") as handle:
            handle.write("c\n")

        respawned = TransactionalTextFileSink(path)
        respawned.resume()
        assert read_lines(path) == ["a", "b", "c"]  # not ["a","b","c","c"]
        assert respawned.pending_transactions() == []
        assert_no_leftovers(path)
        # Even a replayed commit notification cannot double it.
        respawned.recover([2])
        assert read_lines(path) == ["a", "b", "c"]

    def test_resume_keeps_uncommitted_side_files_pending(self, tmp_path):
        path = self._seeded_sink(tmp_path)
        sink = TransactionalTextFileSink(path)
        sink.resume()
        assert sink.pending_transactions() == [2]
        # A restore whose checkpoint predates txn 2 aborts it instead.
        sink.recover([])
        assert read_lines(path) == ["a", "b"]
        assert_no_leftovers(path)

    def test_open_wipes_meta_with_the_other_artifacts(self, tmp_path):
        path = self._seeded_sink(tmp_path)
        assert os.path.exists(path + ".txn-meta.json")
        fresh = TransactionalTextFileSink(path)
        fresh.open()
        assert not os.path.exists(path + ".txn-meta.json")
        assert read_lines(path) == []


class TestFormats:
    def test_jsonl_round_trip(self, tmp_path):
        import json
        path = str(tmp_path / "out.jsonl")
        sink = TransactionalJsonlFileSink(path)
        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5))
        (env.from_collection(range(5))
            .map(lambda v: {"value": v}, name="wrap")
            .add_sink(sink, name="jsonl-sink"))
        env.execute()
        assert [json.loads(line) for line in read_lines(path)] == [
            {"value": v} for v in range(5)]

    def test_csv_writes_header_and_validates_width(self, tmp_path):
        path = str(tmp_path / "out.csv")
        sink = TransactionalCsvFileSink(path, header=["key", "value"])
        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5))
        (env.from_collection([("a", 1), ("b", 2)])
            .add_sink(sink, name="csv-sink"))
        env.execute()
        assert read_lines(path) == ["key,value", "a,1", "b,2"]

        bad = TransactionalCsvFileSink(str(tmp_path / "bad.csv"),
                                       header=["only-one"])
        bad.open()
        with pytest.raises(ValueError, match="width"):
            bad.write(("too", "wide"))
