"""Crash-replay across the history->stream seam.

The exactly-once claim of ISSUE 7's tentpole: a hybrid job killed
*during the history phase*, *at the cutover barrier*, or *after the
cutover* must restore the correct side of the seam and produce 2PC sink
output byte-identical to the unfaulted run -- on the cooperative backend
(deterministic in-process crashes via failure hooks that watch the
hybrid source's phase) and on the multiprocess backend (real SIGKILL via
the OS-level chaos injector, phase targeted by throttling one side of
the seam).

Determinism note (same trick as ``test_process_chaos.py``): ``KEYS`` is
even and ``N`` is even, so with parallelism 2 every key's records come
from exactly one source subtask on *both* sides of the seam (slice
ownership is ``index % parallelism``, and value parity == index parity
on each side).  Per-key arrival order -- and with it every running fold
total -- is then deterministic across attempts and restores, which is
what lets these tests demand byte-identical output instead of a weaker
final-state check.
"""

import multiprocessing
import time

import pytest

from repro.api.environment import Environment
from repro.connectors.sinks import TransactionalTextFileSink
from repro.runtime.engine import EngineConfig
from repro.runtime.faults import (
    KILL_WORKER,
    ProcessChaosInjector,
    ProcessFaultEvent,
)
from repro.runtime.restart import FixedDelayRestart

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

N = 600          # records per side; even (see determinism note)
KEYS = 14


def _hybrid_ops(engine):
    return [task.chain[0].operator for task in engine.tasks
            if callable(getattr(task.chain[0].operator,
                                "cutover_report", None))]


def _phase_crash_hook(phase_predicate, min_checkpoints=1):
    """Crash once, on the first round where the hybrid source satisfies
    ``phase_predicate`` and at least ``min_checkpoints`` checkpoints
    completed (so recovery restores rather than restarts)."""
    state = {"fired": False}

    def hook(engine, rounds):
        if state["fired"] or len(engine.checkpoint_store) < min_checkpoints:
            return False
        ops = _hybrid_ops(engine)
        if ops and phase_predicate(ops):
            state["fired"] = True
            return True
        return False

    hook.state = state
    return hook


def _in_history(ops):
    """Mid-history: every subtask still draining, some records emitted."""
    return (all(op._phase == "history" for op in ops)
            and sum(op._history_emitted for op in ops) >= N // 4)


def _at_barrier(ops):
    """At the cutover: some subtask crossed the seam (its watermark and
    first stream records are in flight, not yet checkpointed)."""
    return any(op._phase == "stream" for op in ops)


def _after_cutover(ops):
    """Well past the seam: every subtask streaming, half the live side
    already emitted."""
    return (all(op._phase == "stream" for op in ops)
            and sum(op._stream_emitted for op in ops) >= N // 2)


def _build_job(env, target, history_burst=1):
    (env.read(range(N))
        .then_stream(lambda: range(N, 2 * N), history_burst=history_burst,
                     name="hybrid")
        .key_by(lambda v: v % KEYS)
        .fold(0, lambda acc, value: acc + value)
        .add_sink(TransactionalTextFileSink(
            target, formatter=lambda pair: "%d:%d" % pair)))


def _run_cooperative(tmp_path, label, failure_hook=None):
    target = str(tmp_path / ("%s.txt" % label))
    config = EngineConfig(checkpoint_interval_ms=5, elements_per_step=4,
                          failure_hook=failure_hook)
    env = Environment(parallelism=2, config=config)
    _build_job(env, target)
    job = env.execute()
    with open(target) as handle:
        lines = sorted(line.rstrip("\n") for line in handle)
    return lines, job, env


@pytest.mark.parametrize("label, predicate", [
    ("history", _in_history),
    ("barrier", _at_barrier),
    ("after", _after_cutover),
])
def test_cooperative_crash_at_seam_phase(tmp_path, label, predicate):
    expected, _, _ = _run_cooperative(tmp_path, "oracle")
    hook = _phase_crash_hook(predicate)
    lines, job, env = _run_cooperative(tmp_path, label, failure_hook=hook)

    assert hook.state["fired"], "the %s-phase crash never fired" % label
    assert job.recoveries >= 1
    assert lines == expected, "2PC output diverged after %s crash" % label
    rows = env.job_report()["cutover"]
    assert sum(r["history_emitted"] + r["stream_emitted"]
               for r in rows) == 2 * N
    if label == "history":
        # the crash predated the seam; the restore rewound the history
        # side and the job still crossed exactly once
        assert all(r["phase"] == "stream" for r in rows)


def test_cooperative_double_crash_both_sides_of_seam(tmp_path):
    """One crash during history AND one after the cutover, in the same
    run: each restore must replay the correct side."""
    expected, _, _ = _run_cooperative(tmp_path, "oracle")
    first = _phase_crash_hook(_in_history)
    second = _phase_crash_hook(_after_cutover, min_checkpoints=2)

    def hook(engine, rounds):
        return first(engine, rounds) or second(engine, rounds)

    lines, job, _ = _run_cooperative(tmp_path, "double", failure_hook=hook)
    assert first.state["fired"] and second.state["fired"]
    assert job.recoveries >= 2
    assert lines == expected


# -- multiprocess: real SIGKILL ----------------------------------------------

def _throttle_history(value):
    """Slow the history side so a wall-clock kill lands mid-history;
    both parities sleep so both source subtasks stay live."""
    if value < N:
        time.sleep(0.002)
    return value


def _throttle_live(value):
    """Slow the live side so the kill lands after the cutover."""
    if value >= N:
        time.sleep(0.002)
    return value


def _throttle_seam(value):
    """Slow only the records around the seam so the kill lands at the
    cutover barrier.  The window is sized so each worker spends ~400ms
    inside it (80 records x 5ms): the 300ms kill then lands solidly
    mid-seam instead of racing job completion on a fast run."""
    if N - 80 <= value < N + 80:
        time.sleep(0.005)
    return value


def _run_multiprocess(tmp_path, label, throttle, schedule=None, seed=0):
    target = str(tmp_path / ("%s.txt" % label))
    kwargs = dict(checkpoint_interval_ms=40,
                  checkpoint_dir=str(tmp_path / ("chk-%s" % label)),
                  restart_strategy=FixedDelayRestart(max_restarts=10,
                                                     delay_ms=0),
                  heartbeat_interval_ms=20,
                  # wide enough that a throttled-but-alive worker is
                  # never falsely declared dead (see docs/backfill.md on
                  # history_burst lengthening scheduler steps)
                  watchdog_suspect_ms=250, watchdog_fail_ms=1200)
    if schedule is not None:
        kwargs.update(backend="multiprocess", num_workers=2,
                      process_chaos=ProcessChaosInjector(schedule,
                                                         seed=seed))
    config = EngineConfig(**kwargs)
    env = Environment(parallelism=2, config=config)
    # burst 1: the throttle sleeps inside the fused source step, and an
    # elevated burst would multiply per-step wall time past heartbeat
    # deadlines (the cooperative tests cover elevated bursts)
    (env.read(range(N))
        .then_stream(lambda: range(N, 2 * N), history_burst=1,
                     name="hybrid")
        .map(throttle, name="throttle")
        .key_by(lambda v: v % KEYS)
        .fold(0, lambda acc, value: acc + value)
        .add_sink(TransactionalTextFileSink(
            target, formatter=lambda pair: "%d:%d" % pair)))
    job = env.execute()
    with open(target) as handle:
        lines = sorted(line.rstrip("\n") for line in handle)
    return lines, job, env, config


@pytest.mark.skipif(not HAS_FORK,
                    reason="multiprocess backend requires fork")
@pytest.mark.parametrize("label, throttle", [
    ("history", _throttle_history),
    ("barrier", _throttle_seam),
    ("after", _throttle_live),
])
def test_multiprocess_sigkill_at_seam_phase(tmp_path, label, throttle):
    expected, _, _, _ = _run_multiprocess(tmp_path, "oracle-%s" % label,
                                          throttle)
    schedule = [ProcessFaultEvent(300, KILL_WORKER, target=0)]
    lines, job, env, config = _run_multiprocess(
        tmp_path, label, throttle, schedule=schedule)

    assert config.process_chaos.applied, "the kill never fired"
    assert job.restarts >= 1
    assert lines == expected, "2PC output diverged (%s kill)" % label
    rows = env.job_report()["cutover"]
    assert sum(r["history_emitted"] + r["stream_emitted"]
               for r in rows) == 2 * N
    leaked = [p for p in multiprocessing.active_children() if p.is_alive()]
    assert not leaked, "worker processes leaked: %r" % leaked
