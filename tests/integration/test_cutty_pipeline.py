"""Integration: CuttyWindowOperator inside a full dataflow, compared
against the standard WindowOperator on the same stream."""

from repro.api import StreamExecutionEnvironment
from repro.cutty import CuttyWindowOperator, PeriodicWindows, SessionWindows
from repro.metrics import AggregationCostCounter
from repro.windowing import (
    CountAggregate,
    EventTimeSessionWindows,
    SlidingEventTimeWindows,
    SumAggregate,
)


def test_cutty_operator_sliding_sums_match_standard():
    # Stream of (key, value) with ts; compare per-window sums.
    data = [(("u%d" % (i % 3)), i % 5, i * 7) for i in range(200)]

    env1 = StreamExecutionEnvironment(parallelism=2)
    standard = (env1.from_collection([((k, v), ts) for k, v, ts in data],
                                     timestamped=True)
                .key_by(lambda kv: kv[0])
                .window(SlidingEventTimeWindows.of(70, 35))
                .aggregate(SumOfSecond())
                .collect())
    env1.execute()
    standard_results = {(r.key, r.window.start): r.value
                        for r in standard.get()}

    # Cutty assumes per-key FIFO event order; a single source subtask
    # guarantees it (multiple sources interleave timestamps arbitrarily).
    env2 = StreamExecutionEnvironment(parallelism=1)
    keyed = (env2.from_collection([((k, v), ts) for k, v, ts in data],
                                  timestamped=True)
             .key_by(lambda kv: kv[0]))
    node = keyed._connect_keyed(
        "cutty",
        lambda: CuttyWindowOperator(
            aggregate_factory=SumOfSecond,
            spec_factories={"q": lambda: PeriodicWindows(70, 35)}))
    from repro.api.stream import DataStream
    cutty = DataStream(env2, node).collect()
    env2.execute()
    cutty_results = {(r.key, r.start): r.value for r in cutty.get()}

    assert cutty_results == standard_results


def test_cutty_operator_sessions_match_standard():
    data = [(("u%d" % (i % 2)), 1, ts) for i, ts in enumerate(
        [0, 5, 10, 200, 210, 500, 505, 900])]

    env1 = StreamExecutionEnvironment()
    standard = (env1.from_collection([((k, v), ts) for k, v, ts in data],
                                     timestamped=True)
                .key_by(lambda kv: kv[0])
                .window(EventTimeSessionWindows.with_gap(50))
                .aggregate(CountAggregate())
                .collect())
    env1.execute()
    standard_results = {(r.key, r.window.start, r.window.end): r.value
                        for r in standard.get()}

    env2 = StreamExecutionEnvironment()
    keyed = (env2.from_collection([((k, v), ts) for k, v, ts in data],
                                  timestamped=True)
             .key_by(lambda kv: kv[0]))
    node = keyed._connect_keyed(
        "cutty",
        lambda: CuttyWindowOperator(
            aggregate_factory=CountAggregate,
            spec_factories={"q": lambda: SessionWindows(50)}))
    from repro.api.stream import DataStream
    cutty = DataStream(env2, node).collect()
    env2.execute()
    cutty_results = {(r.key, r.start, r.end): r.value for r in cutty.get()}

    assert cutty_results == standard_results


def test_cutty_operator_serves_multiple_queries_from_one_node():
    data = [(("k", 1), ts) for ts in range(0, 400, 4)]
    env = StreamExecutionEnvironment()
    counter = AggregationCostCounter()
    keyed = (env.from_collection(data, timestamped=True)
             .key_by(lambda kv: kv[0]))
    node = keyed._connect_keyed(
        "cutty",
        lambda: CuttyWindowOperator(
            aggregate_factory=CountAggregate,
            spec_factories={
                "tumbling": lambda: PeriodicWindows(100),
                "sliding": lambda: PeriodicWindows(100, 20),
                "session": lambda: SessionWindows(10),
            },
            counter=counter))
    from repro.api.stream import DataStream
    results = DataStream(env, node).collect()
    env.execute()
    by_query = {}
    for r in results.get():
        by_query.setdefault(r.query_id, []).append(r)
    assert set(by_query) == {"tumbling", "sliding", "session"}
    # Tumbling [0,100) holds ts 0,4,...,96 -> 25 events.
    tumbling = {(r.start, r.end): r.value for r in by_query["tumbling"]}
    assert tumbling[(0, 100)] == 25
    # Gap 10 > max inter-arrival 4: one big session of all 100 events.
    session = {(r.start, r.end): r.value for r in by_query["session"]}
    assert session == {(0, 406): 100}
    # One lift per record despite three queries.
    assert counter.lifts.value == len(data)


class SumOfSecond:
    """Aggregate over (key, value) tuples summing the numeric field."""

    invertible = True
    commutative = True

    def create_accumulator(self):
        return 0

    def add(self, value, acc):
        return acc + value[1]

    def merge(self, a, b):
        return a + b

    def get_result(self, acc):
        return acc

    def retract(self, value, acc):
        return acc - value[1]
