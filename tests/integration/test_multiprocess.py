"""Backend parity matrix: the multiprocess shared-nothing backend must
produce the same results as the cooperative reference scheduler.

The cooperative engine is the correctness oracle (it is itself checked
against naive/batch oracles elsewhere); these tests run the *same*
program on ``backend="multiprocess"`` with two workers and assert output
equality -- over fuzzed windowed-aggregation cases, under poison-record
quarantine, across supervised crash-restores, and through the
exactly-once transactional sink protocol.
"""

import multiprocessing
import os

import pytest

from repro.api.environment import Environment
from repro.connectors.sinks import TransactionalTextFileSink
from repro.runtime.engine import EngineConfig, JobFailedError
from repro.runtime.restart import FixedDelayRestart
from repro.testing.oracles import (
    WindowedEquivalenceOracle,
    run_streaming_windows,
)
from repro.testing.seeds import rng_for

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multiprocess backend requires the fork start method")


def _mp_config(**kwargs):
    return EngineConfig(backend="multiprocess", num_workers=2, **kwargs)


# -- differential parity over fuzzed window cases ---------------------------


@pytest.mark.parametrize("exchange", ["pipe", "shm"])
@pytest.mark.parametrize("case_index", range(3))
def test_windowed_aggregation_parity(case_index, exchange):
    """Oracle-generated event-time window jobs: cooperative ==
    multiprocess, element for element -- over both exchange transports
    (pickle pipes and columnar shared-memory rings)."""
    oracle = WindowedEquivalenceOracle()
    rng = rng_for(11, "mp-parity", case_index)
    case = oracle.generate(rng, 11, case_index)
    params = case.params

    cooperative, _ = run_streaming_windows(
        list(case.stream), params["assigner"], params["aggregate"],
        params["ooo_bound"], parallelism=2, config=EngineConfig())
    multiproc, job = run_streaming_windows(
        list(case.stream), params["assigner"], params["aggregate"],
        params["ooo_bound"], parallelism=2,
        config=_mp_config(exchange=exchange))

    assert multiproc == cooperative, case.seed_line
    assert job.rounds > 0


@pytest.mark.parametrize("exchange", ["pipe", "shm"])
def test_keyed_reduce_parity_with_hash_exchange(exchange):
    """Keys hash-partitioned across the two workers: per-key totals must
    match the cooperative run exactly (and the run-stable hash_key means
    the *placement* is identical too)."""
    elements = [("user-%d" % (i % 7), i) for i in range(300)]

    def run(config):
        env = Environment(parallelism=2, config=config)
        collected = (env.from_collection(elements)
                     .key_by(lambda e: e[0])
                     .sum(lambda e: e[1])
                     .collect())
        env.execute()
        return collected.get()

    cooperative = run(EngineConfig())
    multiproc = run(_mp_config(exchange=exchange, batch_size=16))
    # sum() emits running (key, total) pairs; the final per-key total
    # must agree.
    assert _final_by_key(multiproc) == _final_by_key(cooperative)


def _final_by_key(pairs):
    final = {}
    for key, value in pairs:
        final[key] = max(final.get(key, 0), value)
    return final


# -- quarantine parity (chaos scenario) -------------------------------------


def test_quarantine_parity():
    """Poison records behind an exchange quarantine identically on both
    backends: same survivors, same dead-letter count."""

    def poison(value):
        if value % 20 == 0:
            raise ValueError("poison %d" % value)
        return value * 2

    def run(config):
        env = Environment(parallelism=2, config=config)
        collected = (env.from_collection(range(100))
                     .rebalance()
                     .map(poison, name="poison-map")
                     .collect())
        env.execute()
        return sorted(collected.get()), len(env.dead_letters)

    cooperative, coop_dead = run(EngineConfig(quarantine_threshold=10))
    multiproc, mp_dead = run(_mp_config(quarantine_threshold=10))
    assert coop_dead == 5  # 0, 20, 40, 60, 80
    assert mp_dead == coop_dead
    assert multiproc == cooperative


# -- supervised crash-restore -----------------------------------------------


def _crash_once_map(flag_path, at_value):
    """A map that crashes the hosting worker exactly once: the first
    record >= ``at_value`` processed while the flag file exists removes
    the flag and raises.  Respawned workers find no flag and proceed."""

    def fn(value):
        if value >= at_value and os.path.exists(flag_path):
            os.remove(flag_path)
            raise RuntimeError("injected crash at %r" % (value,))
        return value

    return fn


def test_restart_from_scratch_after_crash(tmp_path):
    """No checkpoints: the supervisor restarts the whole job from offset
    zero and discards the partial first attempt's collected output."""
    flag = str(tmp_path / "crash.flag")
    open(flag, "w").close()

    env = Environment(parallelism=2, config=_mp_config(
        restart_strategy=FixedDelayRestart(max_restarts=3, delay_ms=0)))
    collected = (env.from_collection(range(400))
                 .rebalance()
                 .map(_crash_once_map(flag, 200), name="crashy")
                 .collect())
    job = env.execute()

    assert not os.path.exists(flag), "crash never injected"
    assert job.restarts == 1
    assert sorted(collected.get()) == list(range(400))


def test_checkpoint_restore_after_crash(tmp_path):
    """With checkpointing: recovery resumes keyed state from the latest
    completed checkpoint and the final per-key totals are exact."""
    flag = str(tmp_path / "crash.flag")
    open(flag, "w").close()
    n, keys = 3000, 5

    env = Environment(parallelism=2, config=_mp_config(
        checkpoint_interval_ms=10,
        restart_strategy=FixedDelayRestart(max_restarts=3, delay_ms=0)))
    collected = (env.from_collection(range(n))
                 .map(_crash_once_map(flag, n // 2), name="crashy")
                 .key_by(lambda v: v % keys)
                 .fold(0, lambda acc, _value: acc + 1)
                 .collect())
    job = env.execute()

    assert not os.path.exists(flag), "crash never injected"
    assert job.restarts == 1
    # Running (key, count) pairs are at-least-once across the restore
    # cut, but the final count per key is exact: every key saw all of
    # its records exactly once through the restored fold state.
    finals = _final_by_key(collected.get())
    assert finals == {key: n // keys for key in range(keys)}


def test_transactional_sink_exactly_once_across_crash(tmp_path):
    """The 2PC sink on the multiprocess backend: a worker crash between
    checkpoints must not duplicate or lose a single committed record."""
    flag = str(tmp_path / "crash.flag")
    target = str(tmp_path / "out.txt")
    open(flag, "w").close()
    n = 3000

    env = Environment(parallelism=2, config=_mp_config(
        checkpoint_interval_ms=10,
        restart_strategy=FixedDelayRestart(max_restarts=3, delay_ms=0)))
    (env.from_collection(range(n))
        .map(_crash_once_map(flag, n // 2), name="crashy")
        .add_sink(TransactionalTextFileSink(target)))
    job = env.execute()

    assert not os.path.exists(flag), "crash never injected"
    assert job.restarts == 1
    with open(target) as handle:
        lines = [int(line) for line in handle]
    assert sorted(lines) == list(range(n)), (
        "exactly-once violated: %d lines, %d unique"
        % (len(lines), len(set(lines))))


# -- federation and surface -------------------------------------------------


def test_job_report_federates_workers():
    env = Environment(parallelism=2, config=_mp_config())
    collected = (env.from_collection(range(50))
                 .key_by(lambda v: v % 3)
                 .sum()
                 .collect())
    env.execute()
    assert collected.get()
    report = env.job_report()
    assert report["job"]["backend"] == "multiprocess"
    assert report["job"]["workers"] == 2
    assert len(report["workers"]) == 2
    operators = report["operators"]
    assert operators, "per-operator rows missing from federated report"
    assert sum(row["records_in"] for row in operators) > 0


def test_job_report_exchange_accounting():
    """In shm mode the report carries per-edge serialization accounting:
    bytes shipped, frames per transport and pickle-fallback counts."""
    env = Environment(parallelism=2, config=_mp_config(batch_size=16))
    collected = (env.from_collection(range(500))
                 .key_by(lambda v: v % 5)
                 .sum()
                 .collect())
    env.execute()
    assert collected.get()
    exchange = env.job_report()["exchange"]
    assert exchange["transport"] == "shm"
    # 2 workers -> 2 directed edges, each with the full stat row.
    assert len(exchange["edges"]) == 2
    for row in exchange["edges"]:
        assert {"src", "dst", "shm_frames", "shm_bytes", "pipe_frames",
                "pickle_fallbacks"} <= set(row)
    totals = exchange["totals"]
    assert totals["shm_records"] > 0, "no batch ever took the ring"
    assert totals["control_frames"] > 0, "EOS/watermarks must take the pipe"
    assert totals["shm_bytes"] > 0


def test_pipe_transport_remains_selectable():
    """exchange='pipe' forces the legacy transport end to end."""
    env = Environment(parallelism=2,
                      config=_mp_config(exchange="pipe", batch_size=16))
    collected = (env.from_collection(range(100))
                 .key_by(lambda v: v % 3)
                 .sum()
                 .collect())
    env.execute()
    assert collected.get()
    exchange = env.job_report()["exchange"]
    assert exchange["transport"] == "pipe"
    assert exchange["totals"]["shm_frames"] == 0
    assert exchange["totals"]["pipe_records"] > 0


def test_interactive_state_apis_rejected():
    env = Environment(parallelism=2, config=_mp_config())
    env.from_collection(range(10)).key_by(lambda v: v).sum().collect()
    env.execute()
    engine = env.last_engine
    with pytest.raises(JobFailedError, match="cooperative"):
        engine.query_state("sum", "value", 1)
    with pytest.raises(JobFailedError, match="cooperative"):
        engine.create_savepoint()
