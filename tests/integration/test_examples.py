"""Every shipped example must run to completion (subprocess smoke test)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = sorted(name for name in os.listdir(EXAMPLES_DIR)
                  if name.endswith(".py"))


def test_every_example_is_covered():
    """If a new example is added, it is automatically picked up below."""
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_cleanly(example):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, (
        "%s failed:\n%s" % (example, completed.stderr[-2000:]))
    assert completed.stdout.strip(), "%s produced no output" % example
