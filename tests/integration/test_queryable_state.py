"""Queryable state: probing the live keyed view of a running job."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.runtime.engine import EngineConfig


def test_query_final_keyed_state():
    env = StreamExecutionEnvironment(parallelism=3)
    data = [("k%d" % (i % 4), 1) for i in range(400)]
    (env.from_collection(data)
        .key_by(lambda v: v[0])
        .count(name="live-count")
        .collect())
    env.execute()
    engine = env.last_engine
    for key_index in range(4):
        assert engine.query_state("live-count", "rolling-fold",
                                  "k%d" % key_index) == 100


def test_query_mid_job_view_is_fresh():
    """Probe the view while the job is still running (cancel hook)."""
    observed = {}

    def probe(engine, rounds):
        if rounds == 30:
            observed["value"] = engine.query_state(
                "live-count", "rolling-fold", "k0", default=0)
            return True  # cancel after probing
        return False

    env = StreamExecutionEnvironment(
        parallelism=2,
        config=EngineConfig(elements_per_step=4, cancel_hook=probe))
    data = [("k0", 1) for _ in range(10_000)]
    (env.from_collection(data)
        .key_by(lambda v: v[0])
        .count(name="live-count")
        .collect())
    job = env.execute()
    assert job.cancelled
    # Mid-flight the count is partial but already non-trivial.
    assert 0 < observed["value"] < 10_000


def test_query_unknown_operator_raises():
    env = StreamExecutionEnvironment()
    env.from_collection([1]).collect()
    env.execute()
    with pytest.raises(KeyError, match="no operator named"):
        env.last_engine.query_state("ghost", "state", "k")


def test_query_missing_key_returns_default():
    env = StreamExecutionEnvironment()
    (env.from_collection([("a", 1)])
        .key_by(lambda v: v[0])
        .count(name="live-count")
        .collect())
    env.execute()
    assert env.last_engine.query_state("live-count", "rolling-fold",
                                       "never-seen", default=-1) == -1
