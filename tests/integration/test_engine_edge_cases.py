"""Engine edge cases: partitioning modes, error propagation, guards."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.plan.graph import GraphValidationError
from repro.runtime.engine import EngineConfig


class TestPartitioningModes:
    def test_broadcast_duplicates_to_every_subtask(self):
        env = StreamExecutionEnvironment(parallelism=1)
        seen = []
        (env.from_collection([1, 2, 3])
            .broadcast()
            .map(lambda x: x, name="fanout")
            .add_sink(seen.append, parallelism=3))
        # broadcast edge: map stays parallelism 1 (same as source) unless
        # raised; raise it explicitly through a 3-way stage instead.
        env.execute()
        assert sorted(seen) == [1, 2, 3]

    def test_broadcast_to_wider_stage(self):
        env = StreamExecutionEnvironment(parallelism=1)
        stream = env.from_collection([1, 2])
        # A 3-parallel stage fed by broadcast sees every record 3 times.
        node = env.graph.new_node(
            "wide", lambda: __import__("repro.runtime.operators",
                                       fromlist=["MapOperator"])
            .MapOperator(lambda x: x), 3)
        from repro.runtime.partition import BroadcastPartitioner
        env.graph.add_edge(stream.node.node_id, node.node_id,
                           BroadcastPartitioner())
        from repro.api.stream import DataStream
        result = DataStream(env, node).collect()
        env.execute()
        assert sorted(result.get()) == [1, 1, 1, 2, 2, 2]

    def test_global_routes_everything_to_subtask_zero(self):
        env = StreamExecutionEnvironment(parallelism=4)
        observed_subtasks = set()

        def tag(value):
            return value

        result = (env.from_collection(range(40))
                  .global_()
                  .map(tag, name="funnel")
                  .collect())
        env.execute()
        engine = env.last_engine
        funnel_tasks = [task for task in engine.tasks
                        if "funnel" in task.vertex_name]
        counts = {task.subtask_index:
                  task.metrics.counters().get("records_in", 0)
                  for task in funnel_tasks}
        active = {index for index, count in counts.items() if count > 0}
        assert active == {0}
        assert sorted(result.get()) == list(range(40))

    def test_union_of_three_streams(self):
        env = StreamExecutionEnvironment()
        a = env.from_collection([1])
        b = env.from_collection([2])
        c = env.from_collection([3])
        result = a.union(b, c).map(lambda x: x * 10).collect()
        env.execute()
        assert sorted(result.get()) == [10, 20, 30]


class TestErrorHandling:
    def test_operator_exception_propagates(self):
        env = StreamExecutionEnvironment()
        def boom(value):
            raise RuntimeError("operator failure on %r" % value)
        env.from_collection([1]).map(boom).collect()
        with pytest.raises(RuntimeError, match="operator failure"):
            env.execute()

    def test_environment_executes_once(self):
        env = StreamExecutionEnvironment()
        env.from_collection([1]).collect()
        env.execute()
        with pytest.raises(RuntimeError, match="already executed"):
            env.execute()

    def test_empty_environment_rejected(self):
        env = StreamExecutionEnvironment()
        with pytest.raises(GraphValidationError):
            env.execute()

    def test_forward_edge_parallelism_mismatch_rejected(self):
        from repro.plan.graph import StreamGraph
        from repro.plan.chaining import build_job_graph
        from repro.runtime.engine import Engine
        from repro.runtime.operators import MapOperator
        from repro.runtime.partition import ForwardPartitioner

        graph = StreamGraph()
        source = graph.new_node("s", lambda: MapOperator(lambda x: x), 2,
                                is_source=True)
        narrow = graph.new_node("n", lambda: MapOperator(lambda x: x), 1,
                                allow_chaining=False)
        graph.add_edge(source.node_id, narrow.node_id, ForwardPartitioner())
        with pytest.raises(ValueError, match="forward edge"):
            Engine(build_job_graph(graph, chaining=False))

    def test_invalid_engine_config(self):
        with pytest.raises(ValueError):
            EngineConfig(channel_capacity=0)
        with pytest.raises(ValueError):
            EngineConfig(elements_per_step=0)
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_interval_ms=0)


class TestScale:
    def test_deep_pipeline(self):
        env = StreamExecutionEnvironment()
        stream = env.from_collection(range(50))
        for _ in range(20):
            stream = stream.map(lambda x: x + 1)
        result = stream.collect()
        env.execute()
        assert sorted(result.get()) == [x + 20 for x in range(50)]

    def test_wide_fanout(self):
        env = StreamExecutionEnvironment()
        source = env.from_collection(range(10))
        results = [source.map(lambda x, k=k: x * k, name="m%d" % k).collect()
                   for k in range(1, 6)]
        env.execute()
        for k, result in enumerate(results, start=1):
            assert sorted(result.get()) == [x * k for x in range(10)]

    def test_many_keys(self):
        env = StreamExecutionEnvironment(parallelism=4)
        n = 5000
        result = (env.from_collection(range(n))
                  .key_by(lambda v: "key-%d" % v)
                  .count()
                  .collect())
        env.execute()
        assert len(result.get()) == n
        assert all(count == 1 for _, count in result.get())

    def test_tiny_channels_large_volume(self):
        env = StreamExecutionEnvironment(
            parallelism=3,
            config=EngineConfig(channel_capacity=1, elements_per_step=1))
        result = (env.from_collection(range(500))
                  .rebalance()
                  .map(lambda x: x)
                  .key_by(lambda v: v % 11)
                  .sum(lambda v: 1)
                  .collect())
        env.execute()
        assert len(result.get()) == 500


class TestDeterminism:
    def test_same_program_same_results_and_rounds(self):
        def run():
            env = StreamExecutionEnvironment(parallelism=3)
            result = (env.from_collection(range(1000))
                      .key_by(lambda v: v % 17)
                      .sum(lambda v: v)
                      .collect())
            job = env.execute()
            return result.get(), job.rounds
        first_results, first_rounds = run()
        second_results, second_rounds = run()
        assert first_results == second_results
        assert first_rounds == second_rounds
