"""OS-level chaos battery for the multiprocess backend.

Where ``test_faults.py`` exercises *modelled* chaos inside the
cooperative engine, this battery attacks the real failure domain of the
multiprocess backend with the operating system: SIGKILL and SIGSTOP
against worker processes, garbage bytes on control pipes, and flipped
bits in persisted checkpoint files.  The contract under test is the
paper's fault-tolerance claim end to end: every faulted run must
converge to output identical to the unfaulted cooperative run, hung
workers must be *detected* (by heartbeat watchdog, not checkpoint
luck), and no attempt may leak zombie processes.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.api.environment import Environment
from repro.connectors.sinks import TransactionalTextFileSink
from repro.runtime.engine import EngineConfig
from repro.runtime.faults import (
    CORRUPT_CHECKPOINT,
    KILL_WORKER,
    STOP_WORKER,
    ProcessChaosInjector,
    ProcessFaultEvent,
)
from repro.runtime.restart import FixedDelayRestart

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="multiprocess backend requires the fork start method")

N = 1200
#: Even so each key's records originate from exactly ONE source subtask
#: (from_collection deals element index % parallelism, so v % 14 fixes
#: v % 2): per-key arrival order -- and with it every running fold
#: total -- is then deterministic across backends, attempts and
#: restores, which is what lets the battery demand byte-identical sink
#: output instead of a weaker final-state check.
KEYS = 14


def _throttle(value):
    """Slow the stream enough that mid-run faults land mid-run.

    Sleeps on both value parities so BOTH source subtasks stay live for
    hundreds of ms: the coordinator stops triggering checkpoints once
    any source subtask finishes, so an unthrottled subtask would race
    the first checkpoint trigger and the durable store could stay
    empty."""
    if value % 4 < 2:
        time.sleep(0.002)
    return value


def _build_job(env, target):
    (env.from_collection(range(N))
        .map(_throttle, name="throttle")
        .key_by(lambda v: v % KEYS)
        .fold(0, lambda acc, value: acc + value)
        .add_sink(TransactionalTextFileSink(
            target, formatter=lambda pair: "%d:%d" % pair)))


def _run_job(config, target):
    env = Environment(parallelism=2, config=config)
    _build_job(env, target)
    job = env.execute()
    with open(target) as handle:
        lines = sorted(line.rstrip("\n") for line in handle)
    return lines, job, env


def _expected_lines(tmp_path):
    """The unfaulted cooperative run is the correctness oracle."""
    target = str(tmp_path / "oracle.txt")
    lines, _, _ = _run_job(EngineConfig(), target)
    return lines


def _chaos_config(tmp_path, schedule, seed=0, **kwargs):
    kwargs.setdefault("checkpoint_interval_ms", 40)
    kwargs.setdefault("checkpoint_dir", str(tmp_path / "chk"))
    kwargs.setdefault("restart_strategy",
                      FixedDelayRestart(max_restarts=10, delay_ms=0))
    kwargs.setdefault("heartbeat_interval_ms", 20)
    return EngineConfig(
        backend="multiprocess", num_workers=2,
        process_chaos=ProcessChaosInjector(schedule, seed=seed), **kwargs)


def _assert_no_zombies():
    # Every worker of every attempt must be reaped: the teardown ladder
    # (join -> terminate -> kill -> blocking join) ends each attempt.
    leaked = [p for p in multiprocessing.active_children() if p.is_alive()]
    assert not leaked, "worker processes leaked: %r" % leaked


# -- SIGKILL parity ----------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_sigkill_parity(tmp_path, seed):
    """A seeded SIGKILL mid-run: the respawned fleet restores from the
    durable checkpoint and the 2PC sink's output is identical to the
    unfaulted cooperative run."""
    expected = _expected_lines(tmp_path)
    schedule = [ProcessFaultEvent(250 + 29 * (seed % 10), KILL_WORKER,
                                  target=seed)]
    config = _chaos_config(tmp_path, schedule, seed=seed)
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))

    assert config.process_chaos.applied, "the kill never fired"
    assert job.restarts >= 1
    assert lines == expected
    _assert_no_zombies()
    report = env.job_report()
    assert report["checkpoints"]["durable"]["persisted"] >= 1
    assert report["fleet"]["watchdog"]["failures_declared"] >= 1


def test_double_kill_both_workers(tmp_path):
    """Two kills in quick succession (possibly both workers): the fleet
    respawns as many times as needed and still converges exactly."""
    expected = _expected_lines(tmp_path)
    schedule = [ProcessFaultEvent(200, KILL_WORKER, target=0),
                ProcessFaultEvent(600, KILL_WORKER, target=1)]
    config = _chaos_config(tmp_path, schedule)
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))

    assert len(config.process_chaos.applied) == 2
    assert job.restarts >= 1
    assert lines == expected
    _assert_no_zombies()


# -- SIGSTOP: hung-worker detection -----------------------------------------


def test_sigstop_detected_by_watchdog_not_checkpoint_timeout(tmp_path):
    """A SIGSTOP'd worker is not dead -- its pipes stay open, so EOF
    never fires.  The heartbeat watchdog must declare it failed within
    the configured deadline; the checkpoint timeout (set absurdly high
    here) must never be the detector."""
    expected = _expected_lines(tmp_path)
    schedule = [ProcessFaultEvent(200, STOP_WORKER, target=0)]
    config = _chaos_config(
        tmp_path, schedule,
        checkpoint_timeout_ms=120_000,  # would "detect" after 2 minutes
        heartbeat_interval_ms=20,
        watchdog_suspect_ms=100,
        watchdog_fail_ms=400)
    started = time.monotonic()
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))
    elapsed = time.monotonic() - started

    assert config.process_chaos.applied, "the stop never fired"
    assert job.restarts >= 1
    assert lines == expected
    # Detection came from the watchdog deadline, not the 2-minute
    # checkpoint timeout: the whole run (including the respawn) finishes
    # in a few seconds.
    assert elapsed < 60, "hung worker sat undetected for %.1fs" % elapsed
    report = env.job_report()
    watchdog = report["fleet"]["watchdog"]
    assert watchdog["failures_declared"] >= 1
    assert watchdog["suspicions"] >= 1
    # The stopped process ignored SIGTERM; teardown had to SIGKILL it.
    assert report["fleet"]["shutdown"]["killed"] >= 1
    _assert_no_zombies()


def test_sigstop_without_checkpointing_still_detected(tmp_path):
    """Watchdog detection must not depend on checkpointing being on."""
    expected = _expected_lines(tmp_path)
    schedule = [ProcessFaultEvent(200, STOP_WORKER, target=1)]
    config = _chaos_config(
        tmp_path, schedule,
        checkpoint_interval_ms=None,
        checkpoint_dir=None,
        heartbeat_interval_ms=20,
        watchdog_suspect_ms=100,
        watchdog_fail_ms=400)
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))

    assert job.restarts >= 1  # from-scratch restart
    assert lines == expected
    assert env.job_report()["fleet"]["watchdog"]["failures_declared"] >= 1
    _assert_no_zombies()


# -- checkpoint corruption ---------------------------------------------------


def test_corrupted_checkpoint_detected_and_survived(tmp_path):
    """Flip a byte in the newest persisted checkpoint, then kill a
    worker on the same supervision tick.  Recovery must *detect* the
    corruption (CRC mismatch) and fall back -- to an older checkpoint or
    to a from-scratch restart -- never restore garbage state."""
    expected = _expected_lines(tmp_path)
    # corrupt-checkpoint retries until a durable checkpoint exists; the
    # kill queues behind it and fires on the same tick, so no fresh
    # intact checkpoint can slip in between.
    schedule = [ProcessFaultEvent(100, CORRUPT_CHECKPOINT),
                ProcessFaultEvent(110, KILL_WORKER, target=0)]
    config = _chaos_config(tmp_path, schedule, seed=5)
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))

    assert len(config.process_chaos.applied) == 2
    assert job.restarts >= 1
    assert lines == expected
    report = env.job_report()
    durable = report["checkpoints"]["durable"]
    assert durable["corruptions_detected"] >= 1
    assert job.counters.get("checkpoint_corruptions_detected", 0) >= 1
    _assert_no_zombies()


# -- multi-seed sweep (the battery) ------------------------------------------


def _battery_seeds():
    """Seeds for the local sweep; CI's chaos-smoke job runs the full
    >= 20-seed battery through ``benchmarks/bench_e13_chaos.py``."""
    return [int(s) for s in os.environ.get(
        "REPRO_CHAOS_SEEDS", "3 11").split()]


@pytest.mark.parametrize("seed", _battery_seeds())
def test_seeded_battery(tmp_path, seed):
    """Randomized kill/stop schedule per seed: output parity with the
    unfaulted run, no zombies, every fault accounted for."""
    expected = _expected_lines(tmp_path)
    config = _chaos_config(
        tmp_path,
        ProcessChaosInjector.from_seed(
            seed, num_faults=2, first_ms=150, last_ms=550).schedule,
        seed=seed,
        # Wide enough that a worker merely slowed by a loaded machine is
        # never falsely declared dead mid-sweep; a SIGSTOP'd one still
        # trips it in ~1.2s.
        watchdog_suspect_ms=250, watchdog_fail_ms=1200)
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))

    assert lines == expected, "seed %d diverged" % seed
    _assert_no_zombies()


def test_sigkill_with_batched_shm_exchange(tmp_path):
    """A mid-run SIGKILL while columnar frames are in flight on the
    rings: the respawned fleet gets *fresh* rings (nothing of the dead
    attempt's slots survives), restores from the durable checkpoint and
    converges to the exact unfaulted output.  Deliberately tiny rings so
    the run also exercises the ring-full pipe fallback under chaos."""
    expected = _expected_lines(tmp_path)
    schedule = [ProcessFaultEvent(300, KILL_WORKER, target=0)]
    config = _chaos_config(tmp_path, schedule, seed=13,
                           batch_size=16, exchange="shm",
                           exchange_ring_slots=2,
                           exchange_slot_bytes=4096)
    lines, job, env = _run_job(config, str(tmp_path / "out.txt"))

    assert config.process_chaos.applied, "the kill never fired"
    assert job.restarts >= 1
    assert lines == expected
    _assert_no_zombies()
    exchange = env.job_report()["exchange"]
    assert exchange["transport"] == "shm"
    assert exchange["totals"]["shm_frames"] > 0, (
        "batched shm chaos run never used the rings")


# -- shutdown hygiene --------------------------------------------------------


def test_clean_run_leaves_no_zombies(tmp_path):
    config = EngineConfig(backend="multiprocess", num_workers=2)
    env = Environment(parallelism=2, config=config)
    collected = (env.from_collection(range(100))
                 .key_by(lambda v: v % 3).sum().collect())
    env.execute()
    env.job_report()
    assert collected.get()
    _assert_no_zombies()
    report = env.job_report()
    assert report["fleet"]["shutdown"] == {"terminated": 0, "killed": 0}
