"""Integration tests for the failure domain: seeded chaos schedules,
restart strategies, poison-record quarantine and checkpoint-coordinator
hardening.

The headline property (`TestChaosSweep`): under randomized-but-seeded
fault schedules -- subtask crashes, dropped/duplicated channel records,
source stalls -- a keyed-window pipeline supervised by any restart
strategy converges to exactly the window results of a failure-free run.
"""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.runtime.engine import EngineConfig, JobFailedError
from repro.runtime.faults import (
    SOURCE_STALL,
    SUBTASK_FAILURE,
    ChaosInjector,
    FaultEvent,
)
from repro.runtime.restart import (
    ExponentialBackoffRestart,
    FailureRateRestart,
    FixedDelayRestart,
    NoRestart,
)
from repro.time.watermarks import WatermarkStrategy
from repro.windowing import CountAggregate, TumblingEventTimeWindows

CRASH_KINDS = {SUBTASK_FAILURE, "drop-record", "duplicate-record"}


def windowed_job(env):
    """Keyed tumbling-window counts over 1400 timestamped records."""
    data = [("k%d" % (i % 7), i) for i in range(1400)]
    strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
    return (env.from_collection(data)
            .assign_timestamps_and_watermarks(strategy)
            .key_by(lambda v: v[0])
            .window(TumblingEventTimeWindows.of(100))
            .aggregate(CountAggregate())
            .collect())


def run_windowed_job(config):
    env = StreamExecutionEnvironment(parallelism=2, config=config)
    results = windowed_job(env)
    job = env.execute()
    # The collect sink is at-least-once (and survives from-scratch
    # restarts), so compare as a set: window results are deterministic
    # per (key, window) and duplicates only come from replay.
    return set(results.get()), job


def sweep_strategy(seed):
    return [
        lambda: FixedDelayRestart(max_restarts=20, delay_ms=2),
        lambda: ExponentialBackoffRestart(initial_delay_ms=1, max_delay_ms=64),
        lambda: FailureRateRestart(max_failures_per_interval=20,
                                   interval_ms=100, delay_ms=2),
    ][seed % 3]()


class TestChaosSweep:
    def test_chaos_runs_converge_to_failure_free_state(self):
        baseline, baseline_job = run_windowed_job(
            EngineConfig(checkpoint_interval_ms=5, elements_per_step=4))
        assert baseline, "baseline job produced no window results"
        assert baseline_job.restarts == 0

        for seed in range(20):
            chaos = ChaosInjector.from_seed(seed, num_faults=3,
                                            first_round=20, last_round=350)
            config = EngineConfig(checkpoint_interval_ms=5,
                                  elements_per_step=4,
                                  restart_strategy=sweep_strategy(seed),
                                  chaos=chaos)
            state, job = run_windowed_job(config)
            assert state == baseline, (
                "seed %d diverged (applied: %r)" % (seed, chaos.applied))
            crashes = sum(1 for _, event in chaos.applied
                          if event.kind in CRASH_KINDS)
            assert job.restarts == crashes, (
                "seed %d: %d crash faults but %d restarts reported"
                % (seed, crashes, job.restarts))

    def test_chaos_sweep_exercises_every_fault_kind(self):
        kinds = set()
        for seed in range(20):
            for event in ChaosInjector.from_seed(seed, num_faults=3).schedule:
                kinds.add(event.kind)
        assert kinds == {"subtask-failure", "drop-record",
                         "duplicate-record", "source-stall"}

    def test_restart_counters_surface_in_metrics(self):
        chaos = ChaosInjector([FaultEvent(30, SUBTASK_FAILURE)])
        config = EngineConfig(checkpoint_interval_ms=5, elements_per_step=4,
                              restart_strategy=FixedDelayRestart(
                                  max_restarts=5, delay_ms=1),
                              chaos=chaos)
        state, job = run_windowed_job(config)
        assert job.restarts == 1
        assert job.counters.get("restarts") == 1
        assert job.counters.get("failures") == 1
        assert any(name.endswith("current_watermark") for name in job.gauges)


class TestRestartSupervision:
    def test_no_restart_strategy_fails_job(self):
        chaos = ChaosInjector([FaultEvent(5, SUBTASK_FAILURE)])
        env = StreamExecutionEnvironment(
            config=EngineConfig(restart_strategy=NoRestart(), chaos=chaos))
        env.from_collection(range(500)).collect()
        with pytest.raises(JobFailedError):
            env.execute()

    def test_strategy_exhaustion_fails_job(self):
        # Three crashes but only two restart grants.
        chaos = ChaosInjector([FaultEvent(5, SUBTASK_FAILURE),
                               FaultEvent(10, SUBTASK_FAILURE),
                               FaultEvent(15, SUBTASK_FAILURE)])
        env = StreamExecutionEnvironment(
            config=EngineConfig(restart_strategy=FixedDelayRestart(
                max_restarts=2, delay_ms=1), chaos=chaos))
        env.from_collection(range(5000)).collect()
        with pytest.raises(JobFailedError):
            env.execute()
        assert env.last_engine.restarts == 2

    def test_restart_before_any_checkpoint_replays_from_scratch(self):
        # Crash long before the first checkpoint: the supervisor must
        # redeploy from the job graph, not die on a missing checkpoint.
        chaos = ChaosInjector([FaultEvent(3, SUBTASK_FAILURE)])
        config = EngineConfig(checkpoint_interval_ms=1000,
                              elements_per_step=4,
                              restart_strategy=FixedDelayRestart(
                                  max_restarts=3, delay_ms=1),
                              chaos=chaos)
        state, job = run_windowed_job(config)
        baseline, _ = run_windowed_job(
            EngineConfig(checkpoint_interval_ms=1000, elements_per_step=4))
        assert state == baseline
        assert job.restarts == 1
        assert job.recoveries == 1


class TestPoisonQuarantine:
    def _fragile_job(self, env, values=50):
        def fragile(v):
            if v % 10 == 3:
                raise ValueError("cannot handle %d" % v)
            return v
        # rebalance() breaks operator chaining so the fragile map runs in
        # a processing task (quarantine guards the task input boundary).
        return (env.from_collection(range(values))
                .rebalance()
                .map(fragile, name="fragile-map")
                .collect())

    def test_poison_records_are_quarantined_not_fatal(self):
        env = StreamExecutionEnvironment(
            config=EngineConfig(quarantine_threshold=10))
        result = self._fragile_job(env)
        job = env.execute()
        assert sorted(result.get()) == [v for v in range(50) if v % 10 != 3]
        assert len(job.dead_letters) == 5
        assert job.counters.get("dead_letters") == 5
        letter = job.dead_letters[0]
        assert letter.value == 3
        assert letter.error_type == "ValueError"
        assert "cannot handle 3" in letter.error
        assert "fragile-map" in letter.operator
        assert job.dead_letters_for(letter.operator)

    def test_without_quarantine_poison_is_fatal(self):
        env = StreamExecutionEnvironment(config=EngineConfig())
        self._fragile_job(env)
        with pytest.raises(ValueError):
            env.execute()

    def test_escalation_above_threshold_restarts_then_fails(self):
        # 5 poison records against a threshold of 2: every attempt
        # escalates, so the strategy's restart budget drains and the job
        # fails -- with the restarts on record.
        env = StreamExecutionEnvironment(
            config=EngineConfig(quarantine_threshold=2,
                                restart_strategy=FixedDelayRestart(
                                    max_restarts=2, delay_ms=1)))
        self._fragile_job(env)
        with pytest.raises(JobFailedError):
            env.execute()
        assert env.last_engine.restarts == 2

    def test_chaos_poison_lands_in_dead_letter_queue(self):
        from repro.runtime.faults import POISON_RECORD
        chaos = ChaosInjector([FaultEvent(5, POISON_RECORD, param=2)])
        env = StreamExecutionEnvironment(
            config=EngineConfig(quarantine_threshold=5, elements_per_step=4,
                                chaos=chaos))
        result = (env.from_collection(range(100))
                  .rebalance()
                  .map(lambda v: v, name="plain-map")
                  .collect())
        job = env.execute()
        assert len(job.dead_letters) == 2
        assert all(letter.error_type == "PoisonPill"
                   for letter in job.dead_letters)
        assert len(result.get()) == 98


class TestCoordinatorHardening:
    def test_wedged_coordinator_regression(self):
        # Regression: a pending checkpoint whose participant finishes
        # before acknowledging used to wedge the coordinator -- the
        # pending checkpoint never cleared, so no checkpoint ever
        # completed again.  The hardened coordinator aborts it and the
        # next trigger (minus the finished participant) completes.
        sabotaged = {"done": False}

        def sabotage(engine, rounds):
            if not sabotaged["done"] and engine._pending_checkpoint is not None:
                victim = next(t for t in engine.tasks if not t.is_source)
                victim.finished = True
                sabotaged["done"] = True
            return False

        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4,
                                channel_capacity=4096,
                                failure_hook=sabotage))
        env.from_collection(range(300)).key_by(lambda v: v % 3).count().collect()
        job = env.execute()
        assert sabotaged["done"], "sabotage hook never fired"
        assert job.checkpoints_aborted >= 1
        assert job.checkpoints_completed >= 1, (
            "coordinator wedged: the aborted checkpoint blocked all "
            "subsequent checkpoints")

    def test_checkpoint_timeout_aborts_and_recovers(self):
        # A source stalled across several checkpoint intervals: each
        # pending checkpoint times out and aborts; once the stall lifts,
        # checkpointing resumes and the job finishes correctly.
        chaos = ChaosInjector([FaultEvent(10, SOURCE_STALL, param=120)])
        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4,
                                checkpoint_timeout_ms=20,
                                chaos=chaos))
        data = [("k%d" % (i % 5), 1) for i in range(2000)]
        result = (env.from_collection(data)
                  .key_by(lambda v: v[0])
                  .count()
                  .collect())
        job = env.execute()
        assert job.checkpoints_aborted >= 2
        assert job.checkpoints_completed >= 2
        finals = {}
        for key, running in result.get():
            finals[key] = max(finals.get(key, 0), running)
        assert finals == {("k%d" % i): 400 for i in range(5)}

    def test_tolerable_consecutive_checkpoint_failures(self):
        chaos = ChaosInjector([FaultEvent(10, SOURCE_STALL, param=300)])
        env = StreamExecutionEnvironment(
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4,
                                checkpoint_timeout_ms=20,
                                tolerable_consecutive_checkpoint_failures=1,
                                chaos=chaos))
        data = [("k%d" % (i % 5), 1) for i in range(2000)]
        env.from_collection(data).key_by(lambda v: v[0]).count().collect()
        with pytest.raises(JobFailedError, match="checkpoint failures"):
            env.execute()


class TestDiagnostics:
    def test_task_repr_shows_runtime_state(self):
        env = StreamExecutionEnvironment(config=EngineConfig())
        env.from_collection(range(10)).key_by(lambda v: v % 2).count().collect()
        env.execute()
        reprs = [repr(task) for task in env.last_engine.tasks]
        assert all("finished" in r for r in reprs)
        processing = next(r for task, r in zip(env.last_engine.tasks, reprs)
                          if not task.is_source)
        assert "in_depths=" in processing
