"""Savepoints and rescaling: stop a job, resume the same program at a
different parallelism, verify exactly-once state."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.cutty import PeriodicWindows
from repro.runtime.engine import EngineConfig, JobFailedError
from repro.windowing import CountAggregate

KEYS = 7
DATA = [("k%d" % (index % KEYS), 1) for index in range(4000)]
TRUE_COUNT = 4000 // KEYS  # per key (4000 divisible is not required)


def cancel_after(rounds_target, min_checkpoints=1):
    def hook(engine, rounds):
        return (rounds >= rounds_target
                and len(engine.checkpoint_store) >= min_checkpoints)
    return hook


def keyed_count_pipeline(env):
    # The source keeps parallelism 2 across runs (sources cannot
    # rescale); only the keyed stage follows env.parallelism.
    return (env.from_source(lambda: DATA, parallelism=2,
                            name="pinned-source")
            .key_by(lambda v: v[0])
            .count()
            .collect())


def run_first_half(parallelism):
    env = StreamExecutionEnvironment(
        parallelism=parallelism,
        config=EngineConfig(checkpoint_interval_ms=5, elements_per_step=4,
                            cancel_hook=cancel_after(60)))
    keyed_count_pipeline(env)
    job = env.execute()
    assert job.cancelled
    return env.last_engine.create_savepoint()


def run_second_half(parallelism, savepoint):
    env = StreamExecutionEnvironment(
        parallelism=parallelism,
        config=EngineConfig(elements_per_step=4))
    result = keyed_count_pipeline(env)
    env.execute(from_savepoint=savepoint)
    finals = {}
    for key, running in result.get():
        finals[key] = max(finals.get(key, 0), running)
    return finals


def true_counts():
    counts = {}
    for key, _ in DATA:
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestSavepointResume:
    def test_resume_same_parallelism(self):
        savepoint = run_first_half(parallelism=2)
        finals = run_second_half(2, savepoint)
        assert finals == true_counts()

    def test_scale_up(self):
        savepoint = run_first_half(parallelism=2)
        finals = run_second_half(4, savepoint)
        assert finals == true_counts()

    def test_scale_down(self):
        savepoint = run_first_half(parallelism=3)
        finals = run_second_half(1, savepoint)
        assert finals == true_counts()

    def test_savepoint_without_checkpoint_rejected(self):
        env = StreamExecutionEnvironment()
        env.from_collection([1]).collect()
        env.execute()
        with pytest.raises(JobFailedError, match="no completed checkpoint"):
            env.last_engine.create_savepoint()

    def test_source_rescale_rejected(self):
        savepoint = run_first_half(parallelism=2)
        env = StreamExecutionEnvironment(
            parallelism=2, config=EngineConfig(elements_per_step=4))
        # Force a different *source* parallelism while keeping the rest.
        (env.from_source(lambda: DATA, parallelism=3,
                         name="pinned-source")
            .key_by(lambda v: v[0])
            .count()
            .collect())
        with pytest.raises(JobFailedError, match="cannot rescale"):
            env.execute(from_savepoint=savepoint)

    def test_missing_vertex_rejected(self):
        savepoint = run_first_half(parallelism=2)
        env = StreamExecutionEnvironment(
            parallelism=2, config=EngineConfig(elements_per_step=4))
        env.from_collection(DATA, name="other-name").collect()
        with pytest.raises(JobFailedError, match="no state for operator"):
            env.execute(from_savepoint=savepoint)


class TestRescaleStatefulOperators:
    def _cutty_pipeline(self, env):
        data = [(("k%d" % (i % KEYS), 1), i * 2) for i in range(4000)]
        return (env.from_source(lambda: data, timestamped=True,
                                parallelism=1, name="pinned-source")
                .key_by(lambda v: v[0])
                .shared_windows(CountAggregate,
                                {"q": lambda: PeriodicWindows(400)})
                .collect())

    def _window_truth(self):
        data = [(("k%d" % (i % KEYS), 1), i * 2) for i in range(4000)]
        truth = {}
        for (key, _), ts in data:
            window = ts // 400 * 400
            truth[(key, window)] = truth.get((key, window), 0) + 1
        return truth

    def test_cutty_state_rescales(self):
        envA = StreamExecutionEnvironment(
            parallelism=1,
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4,
                                cancel_hook=cancel_after(60)))
        resultA = self._cutty_pipeline(envA)
        jobA = envA.execute()
        assert jobA.cancelled
        savepoint = envA.last_engine.create_savepoint()
        pre = {(r.key, r.start): r.value for r in resultA.get()}

        envB = StreamExecutionEnvironment(
            parallelism=1, config=EngineConfig(elements_per_step=4))
        resultB = self._cutty_pipeline(envB)
        envB.execute(from_savepoint=savepoint)
        post = {(r.key, r.start): r.value for r in resultB.get()}

        combined = dict(pre)
        combined.update(post)  # duplicated windows agree; later wins
        assert combined == self._window_truth()

    def test_windowed_fold_scale_up(self):
        def pipeline(env):
            data = [(("k%d" % (i % KEYS), 1), i * 2) for i in range(4000)]
            from repro.windowing import TumblingEventTimeWindows
            return (env.from_source(lambda: data, timestamped=True,
                                    parallelism=2, name="pinned-source")
                    .key_by(lambda v: v[0])
                    .window(TumblingEventTimeWindows.of(400))
                    .aggregate(CountAggregate())
                    .collect())

        envA = StreamExecutionEnvironment(
            parallelism=2,
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4,
                                cancel_hook=cancel_after(60)))
        resultA = pipeline(envA)
        assert envA.execute().cancelled
        savepoint = envA.last_engine.create_savepoint()
        pre = {(r.key, r.window.start): r.value for r in resultA.get()}

        envB = StreamExecutionEnvironment(
            parallelism=4, config=EngineConfig(elements_per_step=4))
        resultB = pipeline(envB)
        envB.execute(from_savepoint=savepoint)
        post = {(r.key, r.window.start): r.value for r in resultB.get()}

        combined = dict(pre)
        combined.update(post)
        assert combined == self._window_truth()
