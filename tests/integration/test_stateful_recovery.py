"""Recovery of stateful operators: window state, Cutty state, timers.

The E10 bench recovers a simple keyed count; these tests exercise the
harder cases -- in-flight window accumulators, Cutty slice trees and
pending-window registries, and registered timers all surviving a crash.
"""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.cutty import PeriodicWindows
from repro.runtime.engine import EngineConfig
from repro.windowing import CountAggregate, TumblingEventTimeWindows


def make_failure_hook(min_checkpoints=1, at_round=80):
    fired = {"done": False}

    def hook(engine, rounds):
        if (not fired["done"]
                and len(engine.checkpoint_store) >= min_checkpoints
                and rounds >= at_round):
            fired["done"] = True
            return True
        return False

    hook.fired = fired
    return hook


def window_counts(results):
    counts = {}
    for result in results:
        key = (result.key, getattr(result, "window", None) and
               (result.window.start, result.window.end)
               or (result.start, result.end))
        counts[key] = max(counts.get(key, 0), result.value)
    return counts


DATA = [(("k%d" % (i % 4), 1), i * 3) for i in range(3000)]


def run_window_job(failure_hook=None):
    env = StreamExecutionEnvironment(
        parallelism=2,
        config=EngineConfig(checkpoint_interval_ms=4, elements_per_step=4,
                            failure_hook=failure_hook))
    results = (env.from_collection(DATA, timestamped=True)
               .key_by(lambda v: v[0])
               .window(TumblingEventTimeWindows.of(300))
               .aggregate(CountAggregate())
               .collect())
    job = env.execute()
    return job, window_counts(results.get())


def run_cutty_job(failure_hook=None):
    env = StreamExecutionEnvironment(
        parallelism=1,
        config=EngineConfig(checkpoint_interval_ms=4, elements_per_step=4,
                            failure_hook=failure_hook))
    results = (env.from_collection(DATA, timestamped=True)
               .key_by(lambda v: v[0])
               .shared_windows(CountAggregate,
                               {"q": lambda: PeriodicWindows(300)})
               .collect())
    job = env.execute()
    return job, window_counts(results.get())


class TestWindowOperatorRecovery:
    def test_window_state_survives_crash(self):
        _, ground_truth = run_window_job()
        hook = make_failure_hook()
        job, recovered = run_window_job(failure_hook=hook)
        assert hook.fired["done"], "crash never injected"
        assert job.recoveries == 1
        assert recovered == ground_truth

    def test_crash_late_in_the_job(self):
        hook = make_failure_hook(min_checkpoints=3, at_round=400)
        _, ground_truth = run_window_job()
        job, recovered = run_window_job(failure_hook=hook)
        assert hook.fired["done"]
        assert recovered == ground_truth


class TestCuttyOperatorRecovery:
    def test_cutty_slices_and_pending_windows_survive_crash(self):
        _, ground_truth = run_cutty_job()
        hook = make_failure_hook()
        job, recovered = run_cutty_job(failure_hook=hook)
        assert hook.fired["done"], "crash never injected"
        assert job.recoveries == 1
        assert recovered == ground_truth
