"""Integration tests: asynchronous barrier snapshotting and recovery."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.runtime.engine import EngineConfig, JobFailedError


def keyed_count_job(env):
    data = [("k%d" % (i % 5), 1) for i in range(2000)]
    return (env.from_collection(data)
            .key_by(lambda v: v[0])
            .count()
            .collect())


def test_checkpoints_complete_during_execution():
    env = StreamExecutionEnvironment(
        parallelism=2,
        config=EngineConfig(checkpoint_interval_ms=5, elements_per_step=4))
    keyed_count_job(env)
    job = env.execute()
    assert job.checkpoints_completed >= 1
    assert all(duration >= 0 for duration in job.checkpoint_durations_ms)


def test_recovery_restores_exactly_once_keyed_state():
    fired = {"done": False}

    def fail_once(engine, rounds):
        # Crash after at least one checkpoint completed.
        if not fired["done"] and len(engine.checkpoint_store) >= 1 and rounds > 40:
            fired["done"] = True
            return True
        return False

    env = StreamExecutionEnvironment(
        parallelism=2,
        config=EngineConfig(checkpoint_interval_ms=5, elements_per_step=4,
                            failure_hook=fail_once))
    result = keyed_count_job(env)
    job = env.execute()
    assert fired["done"], "failure hook never fired"
    assert job.recoveries == 1
    # The sink may contain duplicate *emissions* (at-least-once sink), but
    # the keyed state itself is exactly-once: the maximum running count per
    # key equals the true count.
    finals = {}
    for key, running in result.get():
        finals[key] = max(finals.get(key, 0), running)
    assert finals == {("k%d" % i): 400 for i in range(5)}


def test_recovery_without_checkpoint_fails():
    def fail_immediately(engine, rounds):
        return rounds == 1

    env = StreamExecutionEnvironment(
        config=EngineConfig(failure_hook=fail_immediately))
    env.from_collection(range(100)).collect()
    with pytest.raises(JobFailedError):
        env.execute()


def test_multiple_recoveries():
    fired = {"count": 0}

    def fail_twice(engine, rounds):
        if (fired["count"] < 2 and len(engine.checkpoint_store) >= 1
                and rounds in (60, 120)):
            fired["count"] += 1
            return True
        return False

    env = StreamExecutionEnvironment(
        parallelism=2,
        config=EngineConfig(checkpoint_interval_ms=3, elements_per_step=2,
                            failure_hook=fail_twice))
    result = keyed_count_job(env)
    job = env.execute()
    assert job.recoveries == fired["count"] >= 1
    finals = {}
    for key, running in result.get():
        finals[key] = max(finals.get(key, 0), running)
    assert finals == {("k%d" % i): 400 for i in range(5)}


def test_checkpointing_disabled_by_default():
    env = StreamExecutionEnvironment()
    env.from_collection(range(10)).collect()
    job = env.execute()
    assert job.checkpoints_completed == 0
