"""Integration tests: streaming programs end-to-end through the engine."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.runtime.engine import EngineConfig
from repro.runtime.operators import ProcessFunction
from repro.state.descriptors import ValueStateDescriptor
from repro.time.watermarks import WatermarkStrategy
from repro.windowing import (
    CountAggregate,
    CountTrigger,
    EventTimeSessionWindows,
    GlobalWindows,
    SlidingEventTimeWindows,
    SumAggregate,
    TumblingEventTimeWindows,
)


def test_map_filter_flatmap_pipeline():
    env = StreamExecutionEnvironment()
    result = (env.from_collection(range(10))
              .map(lambda x: x * 2)
              .filter(lambda x: x % 4 == 0)
              .flat_map(lambda x: [x, x + 1])
              .collect())
    env.execute()
    assert sorted(result.get()) == sorted(
        [x for v in range(10) if (v * 2) % 4 == 0 for x in (v * 2, v * 2 + 1)])


def test_parallel_execution_preserves_multiset():
    env = StreamExecutionEnvironment(parallelism=4)
    result = env.from_collection(range(100)).map(lambda x: x + 1).collect()
    env.execute()
    assert sorted(result.get()) == list(range(1, 101))


def test_keyed_rolling_reduce_emits_running_aggregates():
    env = StreamExecutionEnvironment(parallelism=2)
    data = [("a", 1), ("a", 2), ("b", 10), ("a", 3), ("b", 20)]
    result = (env.from_collection(data)
              .key_by(lambda v: v[0])
              .reduce(lambda x, y: (x[0], x[1] + y[1]))
              .collect())
    env.execute()
    per_key = {}
    for key, total in result.get():
        per_key.setdefault(key, []).append(total)
    assert per_key["a"] == [1, 3, 6]
    assert per_key["b"] == [10, 30]


def test_keyed_sum_and_count():
    env = StreamExecutionEnvironment(parallelism=3)
    data = [("a", 2)] * 5 + [("b", 7)] * 3
    sums = (env.from_collection(data)
            .key_by(lambda v: v[0])
            .sum(lambda v: v[1])
            .collect())
    env.execute()
    finals = {}
    for key, running in sums.get():
        finals[key] = running  # last write wins per key
    assert finals == {"a": 10, "b": 21}


def test_union_merges_streams():
    env = StreamExecutionEnvironment()
    left = env.from_collection([1, 2, 3])
    right = env.from_collection([10, 20])
    result = left.union(right).map(lambda x: x).collect()
    env.execute()
    assert sorted(result.get()) == [1, 2, 3, 10, 20]


def test_keyed_process_function_with_state():
    class Dedup(ProcessFunction):
        def open(self, ctx):
            self.seen = ctx.get_state(ValueStateDescriptor("seen"))

        def process_element(self, value, ctx):
            if self.seen.value() is None:
                self.seen.update(True)
                ctx.emit(value)

    env = StreamExecutionEnvironment(parallelism=2)
    data = ["x", "y", "x", "z", "y", "x"]
    result = (env.from_collection(data)
              .key_by(lambda v: v)
              .process(Dedup())
              .collect())
    env.execute()
    assert sorted(result.get()) == ["x", "y", "z"]


def test_tumbling_event_time_window_counts():
    env = StreamExecutionEnvironment(parallelism=2)
    data = [(("k", i), i * 10) for i in range(10)]  # ts 0..90
    result = (env.from_collection(data, timestamped=True)
              .key_by(lambda v: v[0])
              .window(TumblingEventTimeWindows.of(30))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    counts = {(r.key, r.window.start): r.value for r in result.get()}
    assert counts == {("k", 0): 3, ("k", 30): 3, ("k", 60): 3, ("k", 90): 1}


def test_sliding_window_sums():
    env = StreamExecutionEnvironment()
    data = [(1, t) for t in range(0, 100, 10)]  # one event each 10ms
    result = (env.from_collection(data, timestamped=True)
              .key_by(lambda v: 0)
              .window(SlidingEventTimeWindows.of(40, 20))
              .aggregate(SumAggregate())
              .collect())
    env.execute()
    by_window = {r.window.start: r.value for r in result.get()}
    # Window [0, 40) sees ts 0,10,20,30 -> 4 events of value 1.
    assert by_window[0] == 4
    assert by_window[20] == 4
    # Trailing partial windows have fewer elements.
    assert by_window[80] == 2


def test_session_windows_split_on_gap():
    env = StreamExecutionEnvironment()
    timestamps = [0, 10, 20, 100, 110, 300]
    data = [("u", ts) for ts in timestamps]
    result = (env.from_collection(data, timestamped=True)
              .key_by(lambda v: v[0])
              .window(EventTimeSessionWindows.with_gap(50))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    sessions = sorted((r.window.start, r.window.end, r.value)
                      for r in result.get())
    assert sessions == [(0, 70, 3), (100, 160, 2), (300, 350, 1)]


def test_out_of_order_events_with_bounded_watermarks():
    env = StreamExecutionEnvironment()
    # Events up to 20ms out of order.
    data = [("k", 5), ("k", 25), ("k", 15), ("k", 55), ("k", 35), ("k", 95)]
    strategy = WatermarkStrategy.for_bounded_out_of_orderness(
        lambda v: v[1], 20)
    result = (env.from_collection(data)
              .assign_timestamps_and_watermarks(strategy)
              .key_by(lambda v: v[0])
              .window(TumblingEventTimeWindows.of(30))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    counts = {r.window.start: r.value for r in result.get()}
    assert counts == {0: 3, 30: 2, 90: 1}


def test_late_events_beyond_lateness_are_dropped():
    env = StreamExecutionEnvironment()
    # Monotonic watermarks: the event at ts=5 arriving after ts=100 is late.
    data = [("k", 10), ("k", 100), ("k", 5), ("k", 200)]
    strategy = WatermarkStrategy.for_monotonic_timestamps(lambda v: v[1])
    result = (env.from_collection(data)
              .assign_timestamps_and_watermarks(strategy)
              .key_by(lambda v: v[0])
              .window(TumblingEventTimeWindows.of(50))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    counts = {r.window.start: r.value for r in result.get()}
    # Window [0,50) fired with only the ts=10 event; ts=5 was dropped.
    assert counts[0] == 1
    engine = env.last_engine
    dropped = sum(
        task.metrics.counters().get("late_records_dropped", 0)
        for task in engine.tasks)
    assert dropped == 1


def test_count_trigger_on_global_windows():
    env = StreamExecutionEnvironment()
    result = (env.from_collection(range(10))
              .key_by(lambda v: 0)
              .window(GlobalWindows.create())
              .trigger(CountTrigger(4))
              .aggregate(SumAggregate())
              .collect())
    env.execute()
    values = [r.value for r in result.get()]
    # Two full batches of 4 fire; the trailing 2 elements never trigger.
    assert values == [0 + 1 + 2 + 3, 4 + 5 + 6 + 7]


def test_window_apply_sees_raw_elements():
    env = StreamExecutionEnvironment()
    data = [(("k", i), i * 10) for i in range(6)]
    result = (env.from_collection(data, timestamped=True)
              .key_by(lambda v: v[0])
              .window(TumblingEventTimeWindows.of(30))
              .apply(lambda key, window, values:
                     [(key, window.start, sorted(v[1] for v in values))])
              .collect())
    env.execute()
    by_window = {start: items for _, start, items in result.get()}
    assert by_window[0] == [0, 1, 2]
    assert by_window[30] == [3, 4, 5]


def test_connected_keyed_streams_share_state_by_key():
    env = StreamExecutionEnvironment(parallelism=2)

    def on_control(value, ctx):
        state = ctx.get_state(ValueStateDescriptor("blocked"))
        state.update(True)

    def on_data(value, ctx):
        state = ctx.get_state(ValueStateDescriptor("blocked"))
        if not state.value():
            ctx.emit(value)

    control = env.from_collection(["bad"])
    data = env.from_collection([("bad", 1), ("good", 2), ("good", 3)])
    result = (control.connect(data)
              .key_by(lambda c: c, lambda d: d[0])
              .process(on_control, on_data)
              .collect())
    env.execute()
    values = sorted(result.get())
    # Control stream ordering relative to data is not deterministic in a
    # real system; here the single-threaded scheduler drains the tiny
    # control stream first, so "bad" is blocked.
    assert values == [("good", 2), ("good", 3)]


def test_rebalance_spreads_skewed_input():
    env = StreamExecutionEnvironment(parallelism=1)
    counts = []
    stream = env.from_collection(range(100)).rebalance().map(lambda x: x)
    # route to a 4-way map stage then collect
    result = stream.collect()
    env.execute()
    assert len(result.get()) == 100


def test_explain_contains_chain_information():
    env = StreamExecutionEnvironment(parallelism=2)
    env.from_collection(range(5)).map(lambda x: x).filter(bool).collect()
    plan = env.explain()
    assert "Logical plan" in plan
    assert "Physical plan" in plan
    # source -> map -> filter should be one chain of 3.
    assert "chain=3" in plan


def test_collect_before_execute_raises():
    env = StreamExecutionEnvironment()
    result = env.from_collection([1]).collect()
    with pytest.raises(RuntimeError):
        result.get()


def test_backpressure_small_channels_still_complete():
    env = StreamExecutionEnvironment(
        parallelism=2,
        config=EngineConfig(channel_capacity=2, elements_per_step=1))
    result = (env.from_collection(range(200))
              .key_by(lambda v: v % 7)
              .sum(lambda v: v)
              .collect())
    env.execute()
    assert len(result.get()) == 200


def test_processing_time_windows_fire_via_simulated_clock():
    from repro.windowing import TumblingProcessingTimeWindows
    env = StreamExecutionEnvironment(
        config=EngineConfig(elements_per_step=1, tick_ms=1))
    result = (env.from_collection(range(50))
              .key_by(lambda v: 0)
              .window(TumblingProcessingTimeWindows.of(5))
              .aggregate(CountAggregate())
              .collect())
    env.execute()
    total = sum(r.value for r in result.get())
    assert total == 50  # every element lands in exactly one fired window
