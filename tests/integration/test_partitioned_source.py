"""Tests for the partitioned source: semantics, recovery, full-job
rescaling (sources included)."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.connectors.partitioned import (
    PartitionedSource,
    partition_round_robin,
)
from repro.runtime.engine import EngineConfig

KEYS = 5
DATA = [("k%d" % (index % KEYS), 1) for index in range(3000)]
PARTITIONS = 6


def true_counts():
    counts = {}
    for key, _ in DATA:
        counts[key] = counts.get(key, 0) + 1
    return counts


def pipeline(env, config_name="partitioned"):
    return (env.from_partitioned_source(
                partition_round_robin(DATA, PARTITIONS),
                name="kafka-like")
            .key_by(lambda v: v[0])
            .count(name="running-count")
            .collect(name="out"))


class TestBasics:
    def test_emits_every_partition_element(self):
        env = StreamExecutionEnvironment(parallelism=2)
        result = env.from_partitioned_source(
            partition_round_robin(list(range(100)), 5)).collect()
        env.execute()
        assert sorted(result.get()) == list(range(100))

    def test_more_subtasks_than_partitions(self):
        env = StreamExecutionEnvironment(parallelism=8)
        result = env.from_partitioned_source(
            partition_round_robin(list(range(40)), 3)).collect()
        env.execute()
        assert sorted(result.get()) == list(range(40))

    def test_timestamped_partitions(self):
        parts = [lambda: [("a", 10), ("b", 30)], lambda: [("c", 20)]]
        env = StreamExecutionEnvironment()
        result = env.from_partitioned_source(
            parts, timestamped=True).collect(with_timestamps=True)
        env.execute()
        assert sorted(result.get()) == [("a", 10), ("b", 30), ("c", 20)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedSource([])
        with pytest.raises(ValueError):
            partition_round_robin([1], 0)


class TestRecovery:
    def test_crash_recovery_replays_per_partition(self):
        fired = {"done": False}

        def crash_once(engine, rounds):
            if (not fired["done"] and len(engine.checkpoint_store) >= 1
                    and rounds > 40):
                fired["done"] = True
                return True
            return False

        env = StreamExecutionEnvironment(
            parallelism=2,
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4,
                                failure_hook=crash_once))
        result = pipeline(env)
        job = env.execute()
        assert fired["done"] and job.recoveries == 1
        finals = {}
        for key, running in result.get():
            finals[key] = max(finals.get(key, 0), running)
        assert finals == true_counts()


class TestFullJobRescaling:
    """Savepoint + resume at different parallelism INCLUDING the source."""

    def _first_half(self, parallelism):
        def cancel(engine, rounds):
            return rounds >= 60 and len(engine.checkpoint_store) >= 1
        env = StreamExecutionEnvironment(
            parallelism=parallelism,
            config=EngineConfig(checkpoint_interval_ms=5,
                                elements_per_step=4, cancel_hook=cancel))
        pipeline(env)
        assert env.execute().cancelled
        return env.last_engine.create_savepoint()

    def _second_half(self, parallelism, savepoint):
        env = StreamExecutionEnvironment(
            parallelism=parallelism,
            config=EngineConfig(elements_per_step=4))
        result = pipeline(env)
        env.execute(from_savepoint=savepoint)
        finals = {}
        for key, running in result.get():
            finals[key] = max(finals.get(key, 0), running)
        return finals

    def test_scale_source_up(self):
        savepoint = self._first_half(parallelism=2)
        assert self._second_half(3, savepoint) == true_counts()

    def test_scale_source_down(self):
        savepoint = self._first_half(parallelism=3)
        assert self._second_half(1, savepoint) == true_counts()

    def test_scale_beyond_partition_count(self):
        savepoint = self._first_half(parallelism=2)
        # 8 subtasks over 6 partitions: two subtasks own nothing.
        assert self._second_half(8, savepoint) == true_counts()
