"""Integration tests: DataSet (data at rest) programs on the same engine."""

from repro.api import StreamExecutionEnvironment
from repro.windowing import TumblingEventTimeWindows, CountAggregate


def test_map_filter_on_dataset():
    env = StreamExecutionEnvironment(parallelism=2)
    result = (env.from_bounded(range(20))
              .map(lambda x: x * x)
              .filter(lambda x: x % 2 == 0)
              .collect())
    env.execute()
    assert sorted(result.get()) == [x * x for x in range(20) if x % 2 == 0]


def test_group_by_reduce_group_wordcount():
    env = StreamExecutionEnvironment(parallelism=2)
    lines = ["to be or not to be", "that is the question"]
    result = (env.from_bounded(lines)
              .flat_map(str.split)
              .group_by(lambda w: w)
              .count()
              .collect())
    env.execute()
    counts = dict(result.get())
    assert counts["to"] == 2
    assert counts["be"] == 2
    assert counts["question"] == 1
    assert sum(counts.values()) == 10


def test_grouped_pairwise_reduce():
    env = StreamExecutionEnvironment(parallelism=2)
    data = [("a", 1), ("a", 2), ("b", 5)]
    result = (env.from_bounded(data)
              .group_by(lambda kv: kv[0])
              .reduce(lambda x, y: (x[0], x[1] + y[1]))
              .collect())
    env.execute()
    assert sorted(result.get()) == [("a", 3), ("b", 5)]


def test_grouped_sum():
    env = StreamExecutionEnvironment(parallelism=3)
    data = [("x", 1.5), ("y", 2.0), ("x", 0.5)]
    result = (env.from_bounded(data)
              .group_by(lambda kv: kv[0])
              .sum(lambda kv: kv[1])
              .collect())
    env.execute()
    assert sorted(result.get()) == [("x", 2.0), ("y", 2.0)]


def test_distinct():
    env = StreamExecutionEnvironment(parallelism=2)
    result = env.from_bounded([3, 1, 3, 2, 1, 1]).distinct().collect()
    env.execute()
    assert sorted(result.get()) == [1, 2, 3]


def test_distinct_with_key_function():
    env = StreamExecutionEnvironment()
    result = (env.from_bounded(["apple", "avocado", "banana"])
              .distinct(key_fn=lambda w: w[0])
              .collect())
    env.execute()
    assert sorted(result.get()) == ["apple", "banana"]


def test_count():
    env = StreamExecutionEnvironment(parallelism=4)
    result = env.from_bounded(range(123)).count().collect()
    env.execute()
    assert result.get() == [123]


def test_global_fold():
    env = StreamExecutionEnvironment(parallelism=2)
    result = (env.from_bounded(range(10))
              .fold(0, lambda acc, v: acc + v)
              .collect())
    env.execute()
    assert result.get() == [45]


def test_sort_total_order():
    env = StreamExecutionEnvironment(parallelism=3)
    result = env.from_bounded([5, 3, 9, 1, 7]).sort().collect()
    env.execute()
    assert result.get() == [1, 3, 5, 7, 9]


def test_sort_descending_with_key():
    env = StreamExecutionEnvironment()
    data = [("a", 2), ("b", 9), ("c", 4)]
    result = (env.from_bounded(data)
              .sort(key_fn=lambda kv: kv[1], descending=True)
              .collect())
    env.execute()
    assert result.get() == [("b", 9), ("c", 4), ("a", 2)]


def test_hash_join():
    env = StreamExecutionEnvironment(parallelism=2)
    users = env.from_bounded([(1, "alice"), (2, "bob"), (3, "carol")])
    orders = env.from_bounded([(1, 9.99), (1, 5.00), (3, 2.50), (4, 7.00)])
    result = users.join(
        orders,
        left_key=lambda u: u[0],
        right_key=lambda o: o[0],
        join_fn=lambda u, o: (u[1], o[1])).collect()
    env.execute()
    assert sorted(result.get()) == [("alice", 5.00), ("alice", 9.99),
                                    ("carol", 2.50)]


def test_dataset_union():
    env = StreamExecutionEnvironment(parallelism=2)
    left = env.from_bounded([1, 2])
    right = env.from_bounded([3])
    result = left.union(right).collect()
    env.execute()
    assert sorted(result.get()) == [1, 2, 3]


def test_batch_and_stream_share_one_environment():
    """The unified-model smoke test: one env, one engine run, both kinds."""
    env = StreamExecutionEnvironment(parallelism=2)
    batch_result = (env.from_bounded(range(10))
                    .group_by(lambda v: v % 2)
                    .count()
                    .collect())
    stream_result = (env.from_collection([(i, i * 10) for i in range(10)],
                                         timestamped=True)
                     .key_by(lambda v: v % 2)
                     .window(TumblingEventTimeWindows.of(50))
                     .aggregate(CountAggregate())
                     .collect())
    env.execute()
    assert sorted(batch_result.get()) == [(0, 5), (1, 5)]
    assert sum(r.value for r in stream_result.get()) == 10


def test_dataset_as_stream_reinterpretation():
    env = StreamExecutionEnvironment()
    result = (env.from_bounded([("k", 1), ("k", 2)])
              .as_stream()
              .key_by(lambda v: v[0])
              .sum(lambda v: v[1])
              .collect())
    env.execute()
    assert result.get()[-1] == ("k", 3)
