"""Elastic execution: scale up under backpressure without losing state."""

import pytest

from repro.connectors import partition_round_robin
from repro.runtime.elasticity import ElasticityController

KEYS = 6
DATA = [("k%d" % (index % KEYS), 1) for index in range(4000)]
FANOUT = 3


def true_counts():
    counts = {}
    for key, _ in DATA:
        counts[key] = counts.get(key, 0) + FANOUT
    return counts


def program(env):
    """A structurally imbalanced pipeline: one pinned source chain
    amplifies each record 3x into the keyed stage, so at low parallelism the
    keyed stage cannot keep up (production 3x consumption) and its input
    channels saturate -- the backpressure signal the controller watches.
    Scaling the keyed stage up raises consumption past production."""
    return (env.from_partitioned_source(
                partition_round_robin(DATA, 4), parallelism=1,
                name="events")
            .flat_map(lambda v: [v] * FANOUT, name="amplify")
            .key_by(lambda v: v[0])
            .count(name="counts")
            .collect(name="out"))


class TestElasticityController:
    def test_scales_up_under_backpressure_and_stays_correct(self):
        controller = ElasticityController(
            program,
            initial_parallelism=1,
            max_parallelism=4,
            backlog_threshold=0.5,
            sustain_rounds=10,
            channel_capacity=8,       # tiny buffers: easy to saturate
            elements_per_step=16)
        report = controller.run()

        assert report.decisions, "expected at least one scale-up"
        assert report.final_parallelism > 1
        assert report.runs == len(report.decisions) + 1
        for decision in report.decisions:
            assert decision.new_parallelism == min(
                decision.old_parallelism * 2, 4)
            assert decision.backlog >= 0.5

        # Exactly-once state across every rescale: the running count's
        # maximum per key equals the ground truth.
        finals = {}
        for key, running in report.results:
            finals[key] = max(finals.get(key, 0), running)
        assert finals == true_counts()

    def test_no_scaling_when_buffers_are_ample(self):
        controller = ElasticityController(
            program,
            initial_parallelism=2,
            max_parallelism=4,
            backlog_threshold=0.99,
            sustain_rounds=10_000,    # effectively never
            channel_capacity=4096)
        report = controller.run()
        assert report.decisions == []
        assert report.final_parallelism == 2
        assert report.runs == 1
        finals = {}
        for key, running in report.results:
            finals[key] = max(finals.get(key, 0), running)
        assert finals == true_counts()

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticityController(program, initial_parallelism=0)
        with pytest.raises(ValueError):
            ElasticityController(program, initial_parallelism=4,
                                 max_parallelism=2)
        with pytest.raises(ValueError):
            ElasticityController(program, backlog_threshold=1.5)
