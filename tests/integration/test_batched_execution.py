"""Batched execution mode: record-for-record equivalence with scalar.

The batched fast path (RecordBatch channels, fused stateless chains,
vectorised partitioning) is purely a mechanical-sympathy optimisation:
every pipeline must produce *identical* output with ``batch_size=1`` and
``batch_size=n``, including under checkpointing, crash-replay, chaos
poison and quarantine.  These tests run representative pipelines in both
modes and diff the outputs exactly; the PR-2 differential oracles are
re-run under ``REPRO_BATCH_SIZE`` so the whole oracle battery covers the
batched engine too.
"""

import random

import pytest

from repro.api.environment import StreamExecutionEnvironment
from repro.runtime.engine import EngineConfig, ExecutionConfig
from repro.testing.oracles import (
    DEFAULT_ORACLE_NAMES,
    make_crash_once_hook,
    make_oracle,
    run_streaming_windows,
)
from repro.testing.seeds import rng_for, root_seed

ROOT = root_seed(default=0)

BATCH_SIZES = [2, 7, 64]


def keyed_pipeline(config, data):
    env = StreamExecutionEnvironment(config=config)
    result = (env.from_collection(data)
              .map(lambda x: x * 3)
              .filter(lambda x: x % 4 != 0)
              .flat_map(lambda x: [x, -x])
              .key_by(lambda x: abs(x) % 7)
              .reduce(lambda a, b: a + b)
              .collect())
    env.execute()
    return result.get()


class TestBatchedScalarEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_stateless_plus_keyed_pipeline(self, batch_size):
        data = list(range(200))
        scalar = keyed_pipeline(EngineConfig(batch_size=1), data)
        batched = keyed_pipeline(EngineConfig(batch_size=batch_size), data)
        # Ordered equality: batching must not reorder, drop or duplicate.
        assert batched == scalar

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_parallel_rebalanced_fused_stage(self, batch_size):
        # parallelism 2 forces real channels: rebalance into a fully
        # fused stateless stage, then a global edge into the sink --
        # exercising the round-robin and global batch routers.
        def run(config):
            env = StreamExecutionEnvironment(parallelism=2, config=config)
            result = (env.from_collection(list(range(300)))
                      .rebalance()
                      .map(lambda x: x + 1)
                      .filter(lambda x: x % 3 != 0)
                      .global_()
                      .collect())
            env.execute()
            return result.get()

        # The global sink merges two upstream subtasks; batching changes
        # the fairness *granularity* of that merge (a whole batch per
        # poll), so cross-channel interleaving may differ while each
        # upstream's records stay in order -- compare as a multiset.
        assert (sorted(run(EngineConfig(batch_size=batch_size)))
                == sorted(run(EngineConfig(batch_size=1))))

    @pytest.mark.parametrize("parallelism", [1, 2])
    def test_windowed_aggregation_matches_scalar(self, parallelism):
        # Disorder bounded by the watermark strategy's slack: no record
        # is ever late, which is the regime where window contents are
        # independent of cross-channel merge interleaving.
        rng = random.Random(ROOT)
        elements = [("k%d" % rng.randrange(4), rng.randrange(100),
                     index * 3 + rng.randrange(0, 9))
                    for index in range(250)]
        assigner = {"kind": "sliding", "size": 40, "slide": 20}
        scalar, _ = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=10,
            parallelism=parallelism, config=EngineConfig(batch_size=1))
        batched, _ = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=10,
            parallelism=parallelism, config=EngineConfig(batch_size=32))
        assert batched == scalar

    def test_single_channel_sequences_are_bit_identical(self):
        # At parallelism 1 every channel is a single FIFO, where batching
        # guarantees the *exact* element sequence -- even wildly
        # out-of-order input with late drops must come out identical.
        rng = random.Random(ROOT + 3)
        elements = [("k%d" % rng.randrange(4), rng.randrange(100),
                     rng.randrange(0, 500)) for _ in range(250)]
        assigner = {"kind": "sliding", "size": 40, "slide": 20}
        scalar, _ = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=10,
            parallelism=1, config=EngineConfig(batch_size=1))
        batched, _ = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=10,
            parallelism=1, config=EngineConfig(batch_size=32))
        assert batched == scalar

    def test_execution_config_is_engine_config(self):
        assert ExecutionConfig is EngineConfig


class TestReplayDeterminismAcrossModes:
    @pytest.mark.parametrize("batch_size", [1, 16])
    def test_crash_replay_is_identical_in_both_modes(self, batch_size):
        """Exactly-once recovery must be bit-identical whether records
        travelled as scalars or batches: batches split at barrier
        boundaries, so the checkpoint cut sees the same prefix."""
        rng = random.Random(ROOT + 1)
        elements = [("k%d" % rng.randrange(3), rng.randrange(50),
                     ts * 7) for ts in range(120)]
        assigner = {"kind": "tumbling", "size": 50}

        clean_config = EngineConfig(checkpoint_interval_ms=5,
                                    elements_per_step=4,
                                    batch_size=batch_size)
        clean, clean_job = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=5, config=clean_config)

        hook = make_crash_once_hook(min_checkpoints=1,
                                    at_round=max(5, clean_job.rounds // 2))
        crash_config = EngineConfig(checkpoint_interval_ms=5,
                                    elements_per_step=4,
                                    batch_size=batch_size,
                                    failure_hook=hook)
        replayed, _ = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=5, config=crash_config)

        assert hook.state["fired"]
        assert set(replayed.items()) == set(clean.items())

    def test_scalar_and_batched_crash_replay_agree(self):
        rng = random.Random(ROOT + 2)
        elements = [("k%d" % rng.randrange(3), rng.randrange(50),
                     ts * 7) for ts in range(120)]
        assigner = {"kind": "tumbling", "size": 50}
        results = {}
        for batch_size in (1, 16):
            hook = make_crash_once_hook(min_checkpoints=1, at_round=30)
            config = EngineConfig(checkpoint_interval_ms=5,
                                  elements_per_step=4,
                                  batch_size=batch_size,
                                  failure_hook=hook)
            results[batch_size], _ = run_streaming_windows(
                elements, assigner, "sum", ooo_bound=5, config=config)
        assert results[16] == results[1]


class TestQuarantineUnderBatching:
    @staticmethod
    def _run(config, data, poison):
        env = StreamExecutionEnvironment(config=config)

        def toxic(x):
            if x in poison:
                raise ValueError("poison %d" % x)
            return x * 2

        result = (env.from_collection(data)
                  .rebalance()          # break the source chain: real batches
                  .map(toxic)
                  .filter(lambda x: x % 3 != 0)
                  .global_()
                  .collect())
        job = env.execute()
        return result.get(), sorted(letter.value
                                    for letter in job.dead_letters)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_fused_chain_quarantines_identically(self, batch_size):
        data = list(range(100))
        poison = {13, 14, 77}
        scalar_out, scalar_dead = self._run(
            EngineConfig(quarantine_threshold=10, batch_size=1),
            data, poison)
        batched_out, batched_dead = self._run(
            EngineConfig(quarantine_threshold=10, batch_size=batch_size),
            data, poison)
        assert batched_out == scalar_out
        assert batched_dead == scalar_dead == [13, 14, 77]


class TestOperatorProfiling:
    def test_counters_and_inclusive_time(self):
        env = StreamExecutionEnvironment(config=EngineConfig(
            batch_size=8, operator_profiling=True))
        result = (env.from_collection(list(range(60)))
                  .map(lambda x: x + 1)
                  .filter(lambda x: x % 2 == 0)
                  .collect())
        env.execute()
        assert len(result.get()) == 30
        stats = {s.name: s for s in env.last_engine.operator_stats()}
        assert stats["map"].records_in == 60
        assert stats["map"].records_out == 60
        assert stats["filter"].records_in == 60
        assert stats["filter"].records_out == 30
        assert stats["collect"].records_in == 30
        assert stats["map"].time_ns > 0

    def test_batches_counted_across_a_channel(self):
        env = StreamExecutionEnvironment(parallelism=1, config=EngineConfig(
            batch_size=8, operator_profiling=True))
        result = (env.from_collection(list(range(64)))
                  .rebalance()          # real channel: batches on the wire
                  .map(lambda x: x + 1)
                  .collect())
        env.execute()
        assert len(result.get()) == 64
        stats = {s.name: s for s in env.last_engine.operator_stats()}
        assert stats["map"].records_in == 64
        assert stats["map"].batches >= 1
        # One batch is never double-counted by the per-record default
        # looping into the wrapped process().
        assert stats["map"].records_in == stats["map"].records_out


class TestOraclesUnderBatching:
    """The PR-2 differential oracle battery, re-run with batching forced
    on through the REPRO_BATCH_SIZE environment knob."""

    @pytest.mark.parametrize("oracle_name", DEFAULT_ORACLE_NAMES)
    def test_oracle_passes_batched(self, oracle_name, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "16")
        oracle = make_oracle(oracle_name)
        for index in range(4):
            rng = rng_for(ROOT, oracle.name, index)
            case = oracle.generate(rng, ROOT, index)
            mismatch = oracle.check(case)
            assert mismatch is None, "%s\n%s" % (case.seed_line, mismatch)

    def test_oracle_output_identical_scalar_vs_batched(self, monkeypatch):
        """Stronger than 'both pass': the windows oracle's streaming run
        must produce byte-identical result dicts in both modes."""
        oracle = make_oracle("windows")
        rng = rng_for(ROOT, oracle.name, 0)
        case = oracle.generate(rng, ROOT, 0)
        params = case.params
        outputs = {}
        for size in ("1", "16"):
            monkeypatch.setenv("REPRO_BATCH_SIZE", size)
            outputs[size], _ = run_streaming_windows(
                list(case.stream), params["assigner"], params["aggregate"],
                params["ooo_bound"], params.get("parallelism", 2))
        assert outputs["16"] == outputs["1"]
