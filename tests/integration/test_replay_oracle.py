"""Replay-determinism checks through the differential harness's replay
oracle: a job crash-restored from its latest checkpoint must produce the
same output set as the uninterrupted run (the collect sink is
at-least-once across restarts, hence sets).

Includes the directed regression for the watermark-restore fix: the
timestamps/watermarks operator must rebuild its generator on restore so
that replayed out-of-order records are not dropped as late against the
pre-crash high-water mark.
"""

import pytest

from repro.runtime.engine import EngineConfig
from repro.testing.oracles import (
    ReplayOracle,
    make_crash_once_hook,
    run_streaming_windows,
)
from repro.testing.seeds import rng_for


@pytest.mark.parametrize("case_index", range(5))
def test_replay_oracle_fuzzed_cases(case_index):
    oracle = ReplayOracle()
    rng = rng_for(0, oracle.name, case_index)
    case = oracle.generate(rng, 0, case_index)
    mismatch = oracle.check(case)
    assert mismatch is None, "%s\n%s" % (case.seed_line, mismatch)


def test_watermark_restore_regression_directed():
    """Out-of-order records straddle the crash point: if restore kept
    the pre-crash max timestamp, the replayed stragglers would re-emit
    the old high-water mark and the session's tail would be dropped as
    late, changing the window set."""
    gap = 10
    elements = []
    ts = 0
    for burst in range(30):
        ts += 3
        elements.append(("k0", burst, ts + 4))   # runs ahead ...
        elements.append(("k1", burst, ts))       # ... straggler, 4 behind
    assigner = {"kind": "session", "gap": gap}

    clean_config = EngineConfig(checkpoint_interval_ms=3,
                                elements_per_step=2)
    clean, clean_job = run_streaming_windows(
        elements, assigner, "sum", ooo_bound=4, parallelism=2,
        config=clean_config)
    assert clean, "directed stream produced no windows"

    for fraction in (0.3, 0.6, 0.85):
        hook = make_crash_once_hook(
            min_checkpoints=1,
            at_round=max(5, int(clean_job.rounds * fraction)))
        crash_config = EngineConfig(checkpoint_interval_ms=3,
                                    elements_per_step=2,
                                    failure_hook=hook)
        replayed, _ = run_streaming_windows(
            elements, assigner, "sum", ooo_bound=4, parallelism=2,
            config=crash_config)
        assert hook.state["fired"], (
            "crash never injected at fraction %s" % fraction)
        assert set(replayed.items()) == set(clean.items()), (
            "replay diverged at crash fraction %s" % fraction)


def test_rebalance_cursor_in_checkpoint_and_replay_directed():
    """A round-robin exchange feeds the stateful watermark operator.
    The rebalance cursor must (a) appear in the checkpoint snapshots and
    (b) be restored on recovery so the replayed routing matches the
    original run -- otherwise per-subtask watermark state and the
    replayed record placement disagree."""
    from repro.api.environment import Environment
    from repro.runtime.restart import FixedDelayRestart

    elements = [("k%d" % (i % 3), i, i * 2) for i in range(120)]
    assigner = {"kind": "tumbling", "size": 20}

    # (a) the cursor is captured in the cut.
    env = Environment(parallelism=2, config=EngineConfig(
        checkpoint_interval_ms=3, elements_per_step=2))
    collected, _ = _run_rebalanced(env, elements, assigner)
    store = env.last_engine.checkpoint_store
    assert len(store) > 0, "no checkpoints completed"
    cursors = [state
               for snapshot in store.latest.snapshots.values()
               for state in snapshot.partitioners.values()
               if state and "next" in state]
    assert cursors, "no rebalance cursor found in any task snapshot"
    assert any(state["next"] > 0 for state in cursors)
    clean = set(collected.get())

    # (b) crash-restore replays identically.
    for fraction in (0.35, 0.7):
        hook = make_crash_once_hook(min_checkpoints=1, at_round=8)
        env = Environment(parallelism=2, config=EngineConfig(
            checkpoint_interval_ms=3, elements_per_step=2,
            failure_hook=hook,
            restart_strategy=FixedDelayRestart(max_restarts=3,
                                               delay_ms=0)))
        replayed, job = _run_rebalanced(env, elements, assigner)
        assert hook.state["fired"]
        assert set(replayed.get()) == clean, (
            "rebalance replay diverged at fraction %s" % fraction)


def _run_rebalanced(env, elements, assigner_params):
    from repro.testing.oracles import make_assigner
    from repro.time.watermarks import WatermarkStrategy

    strategy = WatermarkStrategy.for_bounded_out_of_orderness(
        lambda element: element[2], 4)
    collected = (env.from_collection(elements)
                 .rebalance()
                 .assign_timestamps_and_watermarks(strategy)
                 .key_by(lambda element: element[0])
                 .window(make_assigner(assigner_params))
                 .reduce(lambda a, b: (a[0], a[1] + b[1], max(a[2], b[2])))
                 .collect())
    job = env.execute()
    return collected, job
