"""Tests for sketches, heavy hitters, exponential histograms, text and
language identification."""

import random

import pytest

from repro.ml import (
    BloomFilter,
    CountMinSketch,
    ExponentialHistogram,
    LanguageIdentifier,
    SpaceSaving,
    char_ngrams,
    remove_stopwords,
    term_frequencies,
    tokenize,
)
from repro.datagen import ZipfSampler


class TestCountMin:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4)
        truth = {}
        rng = random.Random(3)
        for _ in range(5000):
            key = "k%d" % rng.randint(0, 200)
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_guarantee_construction(self):
        sketch = CountMinSketch.with_guarantees(eps=0.01, delta=0.01)
        assert sketch.width >= 271
        assert sketch.depth >= 4

    def test_error_bounded_for_reasonable_width(self):
        sketch = CountMinSketch.with_guarantees(eps=0.005, delta=0.01)
        sampler = ZipfSampler(1000, seed=9)
        truth = {}
        for key in sampler.sample_many(20000):
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        overestimates = [sketch.estimate(key) - count
                         for key, count in truth.items()]
        # eps * N bound, with delta slack: check the 99th percentile.
        overestimates.sort()
        p99 = overestimates[int(len(overestimates) * 0.99)]
        assert p99 <= 0.005 * sketch.total * 2

    def test_merge(self):
        a = CountMinSketch(width=64, depth=3)
        b = CountMinSketch(width=64, depth=3)
        a.add("x", 5)
        b.add("x", 7)
        assert a.merge(b).estimate("x") >= 12

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError):
            CountMinSketch(64, 3).merge(CountMinSketch(32, 3))


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(1000, fp_rate=0.01)
        keys = ["item-%d" % i for i in range(1000)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_in_ballpark(self):
        bloom = BloomFilter.for_capacity(1000, fp_rate=0.01)
        for i in range(1000):
            bloom.add("in-%d" % i)
        false_positives = sum(
            1 for i in range(10000) if bloom.might_contain("out-%d" % i))
        assert false_positives / 10000 < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, fp_rate=2.0)


class TestSpaceSaving:
    def test_finds_true_heavy_hitters(self):
        sampler = ZipfSampler(10000, exponent=1.3, seed=4)
        summary = SpaceSaving(capacity=100)
        truth = {}
        for key in sampler.sample_many(50000):
            summary.add(key)
            truth[key] = truth.get(key, 0) + 1
        true_top10 = sorted(truth, key=lambda k: -truth[k])[:10]
        reported = {hitter.key for hitter in summary.top(20)}
        assert set(true_top10) <= reported

    def test_counts_are_overestimates_with_bounded_error(self):
        summary = SpaceSaving(capacity=10)
        rng = random.Random(6)
        truth = {}
        for _ in range(2000):
            key = rng.randint(0, 50)
            summary.add(key)
            truth[key] = truth.get(key, 0) + 1
        for hitter in summary.top(10):
            true_count = truth.get(hitter.key, 0)
            assert hitter.count >= true_count
            assert hitter.guaranteed <= true_count

    def test_capacity_is_respected(self):
        summary = SpaceSaving(capacity=5)
        for key in range(100):
            summary.add(key)
        assert len(summary) == 5

    def test_merge(self):
        a, b = SpaceSaving(10), SpaceSaving(10)
        for _ in range(50):
            a.add("hot")
        for _ in range(30):
            b.add("hot")
        merged = a.merge(b)
        assert merged.estimate("hot") == 80


class TestExponentialHistogram:
    def test_relative_error_bounded(self):
        histogram = ExponentialHistogram(window=1000, eps=0.1)
        for ts in range(0, 5000, 2):  # one event every 2 time units
            histogram.add(ts)
            true_count = min(ts // 2 + 1, 500)
            estimate = histogram.estimate(ts)
            assert abs(estimate - true_count) <= max(1, 0.15 * true_count)

    def test_space_is_logarithmic(self):
        histogram = ExponentialHistogram(window=10**6, eps=0.1)
        for ts in range(0, 100000, 1):
            histogram.add(ts)
        # 100k events in window, but only O(k log N) buckets.
        assert histogram.num_buckets < 200

    def test_expiry(self):
        histogram = ExponentialHistogram(window=100, eps=0.1)
        histogram.add(0)
        histogram.add(50)
        assert histogram.estimate(500) == 0

    def test_rejects_time_travel(self):
        histogram = ExponentialHistogram(window=100)
        histogram.add(50)
        with pytest.raises(ValueError):
            histogram.add(10)


class TestText:
    def test_tokenize(self):
        assert tokenize("Hello, World! 42 times") == ["hello", "world",
                                                      "times"]

    def test_stopword_removal(self):
        tokens = tokenize("the cat and the hat")
        assert remove_stopwords(tokens, "en") == ["cat", "hat"]

    def test_term_frequencies(self):
        assert term_frequencies(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_char_ngrams(self):
        grams = char_ngrams("ab", n=2)
        assert " a" in grams and "ab" in grams and "b " in grams


class TestLanguageIdentifier:
    def test_identifies_seed_languages(self):
        identifier = LanguageIdentifier()
        assert identifier.identify(
            "the people think this is a good day") == "en"
        assert identifier.identify(
            "die leute denken dass dies ein guter tag ist") == "de"
        assert identifier.identify(
            "les gens pensent que c'est une bonne journée") == "fr"

    def test_online_learning_adds_language(self):
        identifier = LanguageIdentifier(pretrained=False)
        identifier.learn("aaa bbb aaa ccc aaa", "aaaish")
        identifier.learn("xxx yyy zzz xxx yyy", "xyzish")
        assert identifier.identify("aaa aaa bbb") == "aaaish"
        assert identifier.identify("zzz xxx yyy") == "xyzish"

    def test_confidence_margin(self):
        identifier = LanguageIdentifier()
        language, confidence = identifier.identify_with_confidence(
            "the quick brown fox jumps over the lazy dog")
        assert language == "en"
        assert 0.0 <= confidence <= 1.0

    def test_untrained_identifier_rejected(self):
        with pytest.raises(RuntimeError):
            LanguageIdentifier(pretrained=False).identify("hello")

    def test_stream_accuracy_on_generated_documents(self):
        from repro.datagen import DocumentStreamGenerator
        generator = DocumentStreamGenerator(words_per_doc=25, seed=2)
        identifier = LanguageIdentifier()
        correct = total = 0
        for document in generator.documents(200):
            total += 1
            if identifier.identify(document.text) == document.language:
                correct += 1
        assert correct / total > 0.9
