"""Unit tests for the StreamGraph, validation, chaining and explain."""

import pytest

from repro.plan import (
    GraphValidationError,
    StreamGraph,
    build_job_graph,
    explain_job_graph,
    explain_stream_graph,
)
from repro.runtime.operators import MapOperator
from repro.runtime.partition import (
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
)


def map_factory():
    return MapOperator(lambda v: v)


def linear_graph(parallelism=2):
    """source -> map -> map -> sink, all forward edges."""
    graph = StreamGraph()
    source = graph.new_node("src", map_factory, parallelism, is_source=True)
    map1 = graph.new_node("m1", map_factory, parallelism)
    map2 = graph.new_node("m2", map_factory, parallelism)
    sink = graph.new_node("sink", map_factory, parallelism, is_sink=True)
    graph.add_edge(source.node_id, map1.node_id, ForwardPartitioner())
    graph.add_edge(map1.node_id, map2.node_id, ForwardPartitioner())
    graph.add_edge(map2.node_id, sink.node_id, ForwardPartitioner())
    return graph


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            StreamGraph().validate()

    def test_no_sources_rejected(self):
        graph = StreamGraph()
        graph.new_node("lonely", map_factory, 1)
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_orphan_operator_rejected(self):
        graph = StreamGraph()
        graph.new_node("src", map_factory, 1, is_source=True)
        graph.new_node("orphan", map_factory, 1)
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_cycle_rejected(self):
        graph = StreamGraph()
        a = graph.new_node("a", map_factory, 1, is_source=True)
        b = graph.new_node("b", map_factory, 1)
        graph.add_edge(a.node_id, b.node_id, ForwardPartitioner())
        graph.add_edge(b.node_id, a.node_id, ForwardPartitioner())
        with pytest.raises(GraphValidationError):
            graph.validate()

    def test_edge_to_unknown_node_rejected(self):
        graph = StreamGraph()
        a = graph.new_node("a", map_factory, 1, is_source=True)
        with pytest.raises(GraphValidationError):
            graph.add_edge(a.node_id, 99, ForwardPartitioner())

    def test_invalid_parallelism_rejected(self):
        graph = StreamGraph()
        with pytest.raises(ValueError):
            graph.new_node("bad", map_factory, 0)

    def test_topological_order(self):
        graph = linear_graph()
        names = [n.name for n in graph.topological_order()]
        assert names == ["src", "m1", "m2", "sink"]


class TestChaining:
    def test_full_linear_chain_fuses_to_one_vertex(self):
        job_graph = build_job_graph(linear_graph(), chaining=True)
        assert len(job_graph.vertices) == 1
        vertex = next(iter(job_graph.vertices.values()))
        assert vertex.chain_length == 4
        assert vertex.name == "src -> m1 -> m2 -> sink"
        assert job_graph.edges == []

    def test_chaining_disabled_keeps_all_vertices(self):
        job_graph = build_job_graph(linear_graph(), chaining=False)
        assert len(job_graph.vertices) == 4
        assert len(job_graph.edges) == 3
        assert job_graph.total_chained_operators() == 4

    def test_hash_edge_breaks_chain(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 2, is_source=True)
        keyed = graph.new_node("keyed", map_factory, 2)
        graph.add_edge(source.node_id, keyed.node_id,
                       HashPartitioner(lambda v: v))
        job_graph = build_job_graph(graph)
        assert len(job_graph.vertices) == 2
        assert len(job_graph.edges) == 1

    def test_parallelism_change_breaks_chain(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 2, is_source=True)
        narrow = graph.new_node("narrow", map_factory, 1)
        graph.add_edge(source.node_id, narrow.node_id,
                       RebalancePartitioner())
        job_graph = build_job_graph(graph)
        assert len(job_graph.vertices) == 2

    def test_fan_out_breaks_chain(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 1, is_source=True)
        left = graph.new_node("left", map_factory, 1)
        right = graph.new_node("right", map_factory, 1)
        graph.add_edge(source.node_id, left.node_id, ForwardPartitioner())
        graph.add_edge(source.node_id, right.node_id, ForwardPartitioner())
        job_graph = build_job_graph(graph)
        # Source cannot chain (two outputs); left/right are separate heads.
        assert len(job_graph.vertices) == 3
        assert len(job_graph.edges) == 2

    def test_fan_in_breaks_chain(self):
        graph = StreamGraph()
        a = graph.new_node("a", map_factory, 1, is_source=True)
        b = graph.new_node("b", map_factory, 1, is_source=True)
        merge = graph.new_node("merge", map_factory, 1)
        graph.add_edge(a.node_id, merge.node_id, ForwardPartitioner())
        graph.add_edge(b.node_id, merge.node_id, ForwardPartitioner())
        job_graph = build_job_graph(graph)
        assert len(job_graph.vertices) == 3

    def test_no_chaining_flag_respected(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 1, is_source=True)
        stubborn = graph.new_node("stubborn", map_factory, 1,
                                  allow_chaining=False)
        graph.add_edge(source.node_id, stubborn.node_id, ForwardPartitioner())
        job_graph = build_job_graph(graph)
        assert len(job_graph.vertices) == 2

    def test_two_input_edge_never_chained(self):
        graph = StreamGraph()
        a = graph.new_node("a", map_factory, 1, is_source=True)
        join = graph.new_node("join", map_factory, 1)
        graph.add_edge(a.node_id, join.node_id, ForwardPartitioner(),
                       target_input=1)
        job_graph = build_job_graph(graph)
        assert len(job_graph.vertices) == 2
        assert job_graph.edges[0].target_input == 1


class TestExplain:
    def test_explain_renders_both_plans(self):
        graph = linear_graph()
        logical = explain_stream_graph(graph)
        physical = explain_job_graph(build_job_graph(graph))
        assert "src" in logical and "forward" in logical
        assert "chain=4" in physical
