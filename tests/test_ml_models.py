"""Tests for the streaming ML models and evaluation metrics."""

import math
import random

import pytest

from repro.ml import (
    FTRLProximal,
    OnlineLogisticRegression,
    PrequentialEvaluator,
    StreamingMatrixFactorization,
    accuracy,
    auc,
    log_loss,
    rmse,
    sigmoid,
)


class TestMetrics:
    def test_auc_perfect_ranking(self):
        assert auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_auc_inverted_ranking(self):
        assert auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_auc_random_is_half(self):
        rng = random.Random(1)
        labels = [rng.randint(0, 1) for _ in range(2000)]
        scores = [rng.random() for _ in range(2000)]
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_auc_handles_ties(self):
        assert auc([0, 1], [0.5, 0.5]) == 0.5

    def test_auc_requires_both_classes(self):
        with pytest.raises(ValueError):
            auc([1, 1], [0.1, 0.9])

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_log_loss_confident_right_vs_wrong(self):
        right = log_loss([1], [0.99])
        wrong = log_loss([1], [0.01])
        assert right < 0.05 < wrong

    def test_rmse(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(math.sqrt(2))

    def test_prequential_windowed_curve(self):
        evaluator = PrequentialEvaluator()
        for index in range(100):
            evaluator.record(1, 0.1 if index < 50 else 0.9)
        curve = evaluator.windowed_accuracy(50)
        assert curve == [0.0, 1.0]


class TestSigmoid:
    def test_symmetry(self):
        assert sigmoid(0) == 0.5
        assert sigmoid(3) == pytest.approx(1 - sigmoid(-3))

    def test_extreme_values_do_not_overflow(self):
        assert sigmoid(1000) == pytest.approx(1.0)
        assert sigmoid(-1000) == pytest.approx(0.0)


def linearly_separable(n, seed=2):
    rng = random.Random(seed)
    examples = []
    for _ in range(n):
        x1, x2 = rng.uniform(-1, 1), rng.uniform(-1, 1)
        label = 1 if x1 + 2 * x2 > 0 else 0
        examples.append(({"x1": x1, "x2": x2, "bias": 1.0}, label))
    return examples


class TestOnlineLogisticRegression:
    def test_learns_separable_data(self):
        model = OnlineLogisticRegression(learning_rate=0.5)
        evaluator = PrequentialEvaluator()
        for features, label in linearly_separable(3000):
            evaluator.record(label, model.update(features, label))
        # Skip the cold start, judge the warmed-up half.
        warm = evaluator.windowed_accuracy(1500)[-1]
        assert warm > 0.95

    def test_update_returns_pre_update_probability(self):
        model = OnlineLogisticRegression()
        first = model.update({"x": 1.0}, 1)
        assert first == 0.5  # untrained model is uninformative

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            OnlineLogisticRegression().update({"x": 1.0}, 2)

    def test_l2_shrinks_weights(self):
        plain = OnlineLogisticRegression(learning_rate=0.5)
        shrunk = OnlineLogisticRegression(learning_rate=0.5, l2=0.5)
        for features, label in linearly_separable(500):
            plain.update(features, label)
            shrunk.update(features, label)
        assert (sum(abs(w) for w in shrunk.weights.values())
                < sum(abs(w) for w in plain.weights.values()))

    def test_snapshot_restore(self):
        model = OnlineLogisticRegression()
        for features, label in linearly_separable(200):
            model.update(features, label)
        clone = OnlineLogisticRegression()
        clone.restore(model.snapshot())
        probe = {"x1": 0.3, "x2": 0.7, "bias": 1.0}
        assert clone.predict_proba(probe) == model.predict_proba(probe)


class TestFTRL:
    def test_learns_categorical_ctr_structure(self):
        from repro.datagen import AdStreamGenerator
        generator = AdStreamGenerator(seed=5)
        model = FTRLProximal(alpha=0.3, l1=0.1, l2=0.1)
        evaluator = PrequentialEvaluator()
        for impression in generator.impressions(6000):
            probability = model.update(impression.features(),
                                       impression.clicked)
            evaluator.record(impression.clicked, probability)
        warm_labels = evaluator.labels[3000:]
        warm_scores = evaluator.scores[3000:]
        assert auc(warm_labels, warm_scores) > 0.7

    def test_l1_produces_sparsity(self):
        from repro.datagen import AdStreamGenerator
        generator = AdStreamGenerator(seed=6)
        sparse = FTRLProximal(alpha=0.3, l1=2.0, l2=0.1)
        dense = FTRLProximal(alpha=0.3, l1=0.0, l2=0.1)
        for impression in generator.impressions(2000):
            sparse.update(impression.features(), impression.clicked)
            dense.update(impression.features(), impression.clicked)
        assert sparse.nonzero_weights < dense.nonzero_weights

    def test_snapshot_restore(self):
        model = FTRLProximal()
        model.update(["a", "b"], 1)
        model.update(["a", "c"], 0)
        clone = FTRLProximal()
        clone.restore(model.snapshot())
        assert clone.predict_proba(["a", "b"]) == \
            model.predict_proba(["a", "b"])

    def test_validation(self):
        with pytest.raises(ValueError):
            FTRLProximal(alpha=0)
        with pytest.raises(ValueError):
            FTRLProximal().update(["a"], 3)


class TestStreamingMF:
    def test_beats_global_mean_baseline(self):
        from repro.datagen import RatingStreamGenerator
        generator = RatingStreamGenerator(num_users=50, num_items=40,
                                          noise=0.2, seed=8)
        model = StreamingMatrixFactorization(factors=8, learning_rate=0.05,
                                             seed=8)
        truth, model_predictions, mean_predictions = [], [], []
        running_sum, running_count = 0.0, 0
        for rating in generator.ratings(20000):
            mean_predictions.append(
                running_sum / running_count if running_count else 3.5)
            model_predictions.append(model.update(rating.user, rating.item,
                                                  rating.value))
            truth.append(rating.value)
            running_sum += rating.value
            running_count += 1
        # Judge the warmed-up second half.
        half = len(truth) // 2
        model_rmse = rmse(truth[half:], model_predictions[half:])
        mean_rmse = rmse(truth[half:], mean_predictions[half:])
        assert model_rmse < mean_rmse * 0.9

    def test_recommend_ranks_by_prediction(self):
        model = StreamingMatrixFactorization(factors=2, seed=1)
        for _ in range(50):
            model.update("alice", "good", 5.0)
            model.update("alice", "bad", 1.0)
        top = model.recommend("alice", ["good", "bad"], top_k=1)
        assert top[0][0] == "good"

    def test_recommend_excludes_seen(self):
        model = StreamingMatrixFactorization(seed=1)
        model.update("u", "a", 5.0)
        top = model.recommend("u", ["a", "b"], exclude={"a"})
        assert [item for item, _ in top] == ["b"]

    def test_snapshot_restore(self):
        model = StreamingMatrixFactorization(factors=3, seed=2)
        model.update("u", "i", 4.0)
        clone = StreamingMatrixFactorization(factors=3, seed=99)
        clone.restore(model.snapshot())
        assert clone.predict("u", "i") == model.predict("u", "i")

    def test_cold_start_uses_global_mean(self):
        model = StreamingMatrixFactorization(global_mean_prior=3.0)
        assert model.predict("nobody", "nothing") == 3.0


class TestALSRecommender:
    def _split(self, n=8000, seed=21):
        from repro.datagen import RatingStreamGenerator
        generator = RatingStreamGenerator(num_users=60, num_items=50,
                                          noise=0.2, seed=seed)
        ratings = [(r.user, r.item, r.value)
                   for r in generator.ratings(n)]
        cut = int(n * 0.8)
        return ratings[:cut], ratings[cut:], generator

    def test_beats_global_mean_on_held_out_data(self):
        from repro.ml.als import ALSRecommender
        train, test, _ = self._split()
        model = ALSRecommender(factors=8, regularization=0.1,
                               iterations=8, seed=21).fit(train)
        mean = sum(v for _, _, v in train) / len(train)
        import math
        mean_rmse = math.sqrt(sum((v - mean) ** 2
                                  for _, _, v in test) / len(test))
        assert model.rmse(test) < mean_rmse * 0.9

    def test_batch_beats_single_pass_streaming(self):
        """The batch layer's advantage: multiple passes over history."""
        from repro.ml.als import ALSRecommender
        train, test, _ = self._split()
        als = ALSRecommender(factors=8, iterations=10, seed=21).fit(train)
        streaming = StreamingMatrixFactorization(factors=8,
                                                 learning_rate=0.04,
                                                 seed=21)
        for user, item, value in train:
            streaming.update(user, item, value)
        streaming_rmse = rmse([v for _, _, v in test],
                              [streaming.predict(u, i)
                               for u, i, _ in test])
        assert als.rmse(test) <= streaming_rmse * 1.05

    def test_cold_start_falls_back_to_means(self):
        from repro.ml.als import ALSRecommender
        model = ALSRecommender(factors=2, iterations=2).fit(
            [("u1", "i1", 4.0), ("u1", "i2", 2.0), ("u2", "i1", 5.0)])
        # Unknown user and item: global mean.
        assert model.predict("ghost", "phantom") == \
            pytest.approx(model.global_mean)

    def test_recommend_ranks(self):
        from repro.ml.als import ALSRecommender
        ratings = ([("u", "good", 5.0)] * 3 + [("u", "bad", 1.0)] * 3
                   + [("v", "good", 5.0), ("v", "bad", 1.0)])
        model = ALSRecommender(factors=2, iterations=5).fit(ratings)
        top = model.recommend("u", ["good", "bad"], top_k=1)
        assert top[0][0] == "good"

    def test_validation(self):
        from repro.ml.als import ALSRecommender
        with pytest.raises(ValueError):
            ALSRecommender(factors=0)
        with pytest.raises(ValueError):
            ALSRecommender().fit([])
