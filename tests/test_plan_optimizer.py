"""Tests for plan-level optimization: dead-branch elimination."""

import pytest

from repro.api import StreamExecutionEnvironment
from repro.plan import eliminate_dead_branches
from repro.plan.graph import StreamGraph
from repro.runtime.operators import MapOperator
from repro.runtime.partition import ForwardPartitioner


def map_factory():
    return MapOperator(lambda v: v)


class TestDeadBranchElimination:
    def test_branch_without_sink_removed(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 1, is_source=True)
        live = graph.new_node("live", map_factory, 1)
        sink = graph.new_node("sink", map_factory, 1, is_sink=True)
        dead1 = graph.new_node("dead1", map_factory, 1)
        dead2 = graph.new_node("dead2", map_factory, 1)
        graph.add_edge(source.node_id, live.node_id, ForwardPartitioner())
        graph.add_edge(live.node_id, sink.node_id, ForwardPartitioner())
        graph.add_edge(source.node_id, dead1.node_id, ForwardPartitioner())
        graph.add_edge(dead1.node_id, dead2.node_id, ForwardPartitioner())
        removed = eliminate_dead_branches(graph)
        assert removed == ["dead1", "dead2"]
        assert set(node.name for node in graph.nodes.values()) == \
            {"src", "live", "sink"}

    def test_sink_free_graph_untouched(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 1, is_source=True)
        effectless = graph.new_node("m", map_factory, 1)
        graph.add_edge(source.node_id, effectless.node_id,
                       ForwardPartitioner())
        assert eliminate_dead_branches(graph) == []
        assert len(graph.nodes) == 2

    def test_fully_live_graph_untouched(self):
        graph = StreamGraph()
        source = graph.new_node("src", map_factory, 1, is_source=True)
        sink = graph.new_node("sink", map_factory, 1, is_sink=True)
        graph.add_edge(source.node_id, sink.node_id, ForwardPartitioner())
        assert eliminate_dead_branches(graph) == []

    def test_dead_branch_does_no_work_end_to_end(self):
        env = StreamExecutionEnvironment()
        calls = {"dead": 0}

        def spy(value):
            calls["dead"] += 1
            return value

        source = env.from_collection(range(100))
        source.map(spy, name="dead-map")  # never sunk
        result = source.map(lambda v: v + 1, name="live-map").collect()
        env.execute()
        assert sorted(result.get()) == list(range(1, 101))
        assert calls["dead"] == 0  # eliminated, not executed

    def test_explain_reflects_elimination(self):
        env = StreamExecutionEnvironment()
        source = env.from_collection([1])
        source.map(lambda v: v, name="orphaned")
        source.collect()
        plan = env.explain()
        assert "orphaned" not in plan.split("Physical plan")[1]
