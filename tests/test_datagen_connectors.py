"""Tests for workload generators and connectors."""

import os

import pytest

from repro.connectors import (
    CsvFileSink,
    JsonlFileSink,
    TextFileSink,
    csv_records,
    jsonl_records,
    text_file_lines,
    throttled,
)
from repro.datagen import (
    AdStreamGenerator,
    BurstyArrivals,
    ClickstreamGenerator,
    DocumentStreamGenerator,
    PoissonArrivals,
    RatingStreamGenerator,
    UniformArrivals,
    ZipfSampler,
    noisy_waves,
    random_walk,
    spiky_series,
)


class TestArrivals:
    def test_uniform_rate(self):
        timestamps = list(UniformArrivals(100).timestamps(101))
        assert timestamps[0] == 0
        assert timestamps[-1] == 1000  # 100/s over 100 gaps = 1s

    def test_poisson_reproducible_and_monotonic(self):
        a = list(PoissonArrivals(50, seed=1).timestamps(500))
        b = list(PoissonArrivals(50, seed=1).timestamps(500))
        assert a == b
        assert all(x <= y for x, y in zip(a, a[1:]))

    def test_poisson_mean_rate(self):
        timestamps = list(PoissonArrivals(100, seed=2).timestamps(5000))
        duration_s = (timestamps[-1] - timestamps[0]) / 1000.0
        assert 5000 / duration_s == pytest.approx(100, rel=0.1)

    def test_bursty_has_rate_variation(self):
        timestamps = list(BurstyArrivals(10, 1000, period_ms=10_000)
                          .timestamps(2000))
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        assert min(gaps) < 10 and max(gaps) > 20

    def test_zipf_skew(self):
        sampler = ZipfSampler(1000, exponent=1.2, seed=1)
        samples = sampler.sample_many(10000)
        top_key_share = samples.count(0) / len(samples)
        assert top_key_share > 0.05  # hottest key dominates


class TestTimeseries:
    def test_random_walk_bounded_and_seeded(self):
        a = random_walk(500, clamp=(-10, 10), seed=3)
        b = random_walk(500, clamp=(-10, 10), seed=3)
        assert a == b
        assert all(-10 <= value <= 10 for _, value in a)

    def test_noisy_waves_covers_range(self):
        points = noisy_waves(1000)
        assert min(v for _, v in points) < -30
        assert max(v for _, v in points) > 30

    def test_spiky_series_has_spikes(self):
        points = spiky_series(2000, seed=1)
        assert any(abs(value) > 50 for _, value in points)
        assert sum(1 for _, value in points if abs(value) > 50) < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walk(0)


class TestClickstream:
    def test_events_sorted_and_reproducible(self):
        generator = ClickstreamGenerator(num_users=20, days=10, seed=5)
        events_a = generator.events()
        events_b = ClickstreamGenerator(num_users=20, days=10,
                                        seed=5).events()
        assert events_a == events_b
        timestamps = [event.timestamp for event in events_a]
        assert timestamps == sorted(timestamps)

    def test_labeled_examples_have_both_classes(self):
        generator = ClickstreamGenerator(num_users=100, days=30,
                                         churn_fraction=0.4, seed=6)
        examples = generator.labeled_examples()
        labels = {example.label for example in examples}
        assert labels == {0, 1}

    def test_churn_signal_is_learnable(self):
        from repro.ml import OnlineLogisticRegression, PrequentialEvaluator
        generator = ClickstreamGenerator(num_users=400, days=30,
                                         churn_fraction=0.35, seed=7)
        examples = generator.labeled_examples()
        model = OnlineLogisticRegression(learning_rate=0.1)
        evaluator = PrequentialEvaluator()
        for _ in range(3):  # a few passes amplify the small sample
            for example in examples:
                evaluator.record(example.label,
                                 model.update(example.features,
                                              example.label))
        from repro.ml import auc
        n = len(examples)
        assert auc(evaluator.labels[-n:], evaluator.scores[-n:]) > 0.7

    def test_invalid_window_rejected(self):
        generator = ClickstreamGenerator(days=10)
        with pytest.raises(ValueError):
            generator.labeled_examples(observation_days=8,
                                       churn_horizon_days=7)


class TestAds:
    def test_reproducible(self):
        a = list(AdStreamGenerator(seed=1).impressions(100))
        b = list(AdStreamGenerator(seed=1).impressions(100))
        assert a == b

    def test_ctr_in_realistic_range(self):
        impressions = list(AdStreamGenerator(seed=2).impressions(5000))
        ctr = sum(i.clicked for i in impressions) / len(impressions)
        assert 0.005 < ctr < 0.4

    def test_bayes_bound_is_high(self):
        assert AdStreamGenerator(seed=3).bayes_auc_bound() > 0.75

    def test_features_shape(self):
        impression = next(iter(AdStreamGenerator(seed=4).impressions(1)))
        features = impression.features()
        assert "bias" in features
        assert any(f.startswith("segxcamp=") for f in features)


class TestRatings:
    def test_values_in_range(self):
        for rating in RatingStreamGenerator(seed=1).ratings(500):
            assert 1.0 <= rating.value <= 5.0

    def test_latent_structure_present(self):
        generator = RatingStreamGenerator(num_users=30, num_items=30,
                                          noise=0.0, seed=2)
        # With zero noise, repeated (user, item) pairs rate identically.
        seen = {}
        for rating in generator.ratings(5000):
            key = (rating.user, rating.item)
            if key in seen:
                assert seen[key] == pytest.approx(rating.value)
            seen[key] = rating.value


class TestDocs:
    def test_labels_match_languages(self):
        generator = DocumentStreamGenerator(seed=1)
        for document in generator.documents(50):
            assert document.language in generator.languages
            assert document.text

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            DocumentStreamGenerator(languages=["klingon"])


class TestConnectors:
    def test_text_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "lines.txt")
        sink = TextFileSink(path)
        for line in ("alpha", "beta"):
            sink(line)
        assert sink.close() == 2
        assert list(text_file_lines(path)()) == ["alpha", "beta"]

    def test_text_source_is_replayable(self, tmp_path):
        path = str(tmp_path / "lines.txt")
        sink = TextFileSink(path)
        sink("one")
        sink.close()
        factory = text_file_lines(path)
        assert list(factory()) == list(factory()) == ["one"]

    def test_csv_roundtrip_with_types(self, tmp_path):
        path = str(tmp_path / "data.csv")
        sink = CsvFileSink(path, header=["name", "score"])
        sink(["a", 1])
        sink(["b", 2])
        sink.close()
        rows = list(csv_records(path, types={"score": int})())
        assert rows == [{"name": "a", "score": 1}, {"name": "b", "score": 2}]

    def test_csv_sink_validates_width(self, tmp_path):
        sink = CsvFileSink(str(tmp_path / "x.csv"), header=["a", "b"])
        with pytest.raises(ValueError):
            sink(["only-one"])

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        sink = JsonlFileSink(path)
        sink({"k": 1})
        sink({"k": 2})
        sink.close()
        assert list(jsonl_records(path)()) == [{"k": 1}, {"k": 2}]

    def test_throttled_pairs_values_with_arrivals(self):
        factory = throttled(lambda: iter(["a", "b", "c"]),
                            UniformArrivals(1000).timestamps(3))
        assert list(factory()) == [("a", 0), ("b", 1), ("c", 2)]

    def test_file_source_through_engine(self, tmp_path):
        from repro.api import StreamExecutionEnvironment
        path = str(tmp_path / "words.txt")
        sink = TextFileSink(path)
        for line in ("to be or", "not to be"):
            sink(line)
        sink.close()
        env = StreamExecutionEnvironment()
        result = (env.from_source(text_file_lines(path))
                  .flat_map(str.split)
                  .key_by(lambda w: w)
                  .count()
                  .collect())
        env.execute()
        finals = {}
        for word, count in result.get():
            finals[word] = count
        assert finals["to"] == 2 and finals["be"] == 2


class TestConnectorErrorPaths:
    """Connector failures must name the path (and line) so a dead-letter
    queue entry or a stack trace is actionable on its own."""

    def test_missing_file_names_path(self, tmp_path):
        missing = str(tmp_path / "nope.txt")
        for factory in (text_file_lines(missing), csv_records(missing),
                        jsonl_records(missing)):
            with pytest.raises(FileNotFoundError, match="nope.txt"):
                next(iter(factory()))

    def test_malformed_jsonl_names_path_and_line(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        with open(path, "w") as handle:
            handle.write('{"ok": 1}\n{not json}\n')
        with pytest.raises(ValueError, match=r"data\.jsonl:2"):
            list(jsonl_records(path)())

    def test_csv_width_mismatch_names_path_and_line(self, tmp_path):
        path = str(tmp_path / "data.csv")
        with open(path, "w") as handle:
            handle.write("a,b\n1,2\n3,4,5\n")
        with pytest.raises(ValueError, match=r"data\.csv:3"):
            list(csv_records(path)())

    def test_csv_type_conversion_failure_names_path_and_line(self, tmp_path):
        path = str(tmp_path / "data.csv")
        with open(path, "w") as handle:
            handle.write("score\nten\n")
        with pytest.raises(ValueError, match=r"data\.csv:2"):
            list(csv_records(path, types={"score": int})())

    def test_file_sinks_close_atomically(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = TextFileSink(path)
        sink("line")
        sink.close()
        assert not os.path.exists(path + ".tmp")
        with open(path) as handle:
            assert handle.read() == "line\n"
