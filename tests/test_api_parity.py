"""DataSet/DataStream vocabulary parity: the uniform programming model
means one operator vocabulary for data at rest and data in motion.

The matrix below is the contract: every listed method must exist on both
sides with call-compatible leading parameters, and a pipeline written in
the shared vocabulary must produce the same answer in either domain.
"""

import inspect

import pytest

from repro.api import (
    DataSet,
    DataStream,
    Environment,
    GroupedDataSet,
    KeyedStream,
)

#: (batch class, stream class, method) triples that must agree.
PARITY_MATRIX = [
    (DataSet, DataStream, "map"),
    (DataSet, DataStream, "flat_map"),
    (DataSet, DataStream, "filter"),
    (DataSet, DataStream, "group_by"),
    (DataSet, DataStream, "key_by"),
    (DataSet, DataStream, "union"),
    (DataSet, DataStream, "collect"),
    (DataSet, DataStream, "add_sink"),
    (GroupedDataSet, KeyedStream, "reduce"),
    (GroupedDataSet, KeyedStream, "fold"),
    (GroupedDataSet, KeyedStream, "sum"),
    (GroupedDataSet, KeyedStream, "count"),
]


def _leading_params(cls, method):
    """Positional parameter names up to the first defaulted/variadic one
    -- the part of the signature callers actually rely on."""
    signature = inspect.signature(getattr(cls, method))
    names = []
    for param in signature.parameters.values():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            names.append("*")
            break
        if param.default is not param.empty:
            break
        names.append(param.name)
    return names


class TestParityMatrix:
    @pytest.mark.parametrize(
        "batch_cls,stream_cls,method",
        PARITY_MATRIX,
        ids=["%s/%s.%s" % (b.__name__, s.__name__, m)
             for b, s, m in PARITY_MATRIX])
    def test_method_exists_on_both_sides(self, batch_cls, stream_cls,
                                         method):
        assert callable(getattr(batch_cls, method, None)), (
            "%s.%s missing" % (batch_cls.__name__, method))
        assert callable(getattr(stream_cls, method, None)), (
            "%s.%s missing" % (stream_cls.__name__, method))

    @pytest.mark.parametrize(
        "batch_cls,stream_cls,method",
        PARITY_MATRIX,
        ids=["%s/%s.%s" % (b.__name__, s.__name__, m)
             for b, s, m in PARITY_MATRIX])
    def test_leading_parameters_agree(self, batch_cls, stream_cls, method):
        assert (_leading_params(batch_cls, method)
                == _leading_params(stream_cls, method))

    def test_key_by_and_group_by_are_aliases(self):
        env = Environment()
        words = ["a", "b", "a"]
        grouped = env.read(words).group_by(lambda w: w)
        keyed_set = env.read(words).key_by(lambda w: w)
        assert type(grouped) is type(keyed_set) is GroupedDataSet
        keyed = env.from_collection(words).key_by(lambda w: w)
        grouped_stream = env.from_collection(words).group_by(lambda w: w)
        assert type(keyed) is type(grouped_stream) is KeyedStream


def word_count(entry):
    """One pipeline body in the shared vocabulary: works on a DataSet
    or a DataStream without modification."""
    return (entry
            .flat_map(str.split)
            .filter(lambda word: len(word) > 1)
            .group_by(lambda word: word)
            .count()
            .collect())


LINES = ["the quick brown fox", "the lazy dog", "a fox"]
EXPECTED = {("the", 2), ("quick", 1), ("brown", 1), ("fox", 2),
            ("lazy", 1), ("dog", 1)}


class TestOneBodyBothDomains:
    def test_batch_domain(self):
        env = Environment(parallelism=2)
        result = word_count(env.read(LINES))
        env.execute()
        assert dict(result.get()) == dict(EXPECTED)

    def test_stream_domain(self):
        # Streaming counts are *running* counts; keyed order makes the
        # last record per key the final tally.
        env = Environment(parallelism=2)
        result = word_count(env.from_collection(LINES))
        env.execute()
        assert dict(result.get()) == dict(EXPECTED)

    def test_fold_agrees_across_domains(self):
        values = [("a", 1), ("a", 2), ("b", 5)]

        def concat(acc, value):
            return acc + [value[1]]

        batch_env = Environment()
        batch = (batch_env.read(values)
                 .group_by(lambda v: v[0])
                 .fold([], concat).collect())
        batch_env.execute()

        stream_env = Environment()
        stream = (stream_env.from_collection(values)
                  .key_by(lambda v: v[0])
                  .fold([], concat).collect())
        stream_env.execute()

        # Batch folds emit once per group; streams emit one running
        # fold per record -- the *final* per-key value must agree.
        final_stream = {}
        for key, acc in stream.get():
            final_stream[key] = acc
        assert dict(batch.get()) == final_stream

    def test_union_varargs_merges_all_inputs(self):
        env = Environment()
        merged = (env.read([1, 2])
                  .union(env.read([3]), env.read([4, 5]))
                  .collect())
        env.execute()
        assert sorted(merged.get()) == [1, 2, 3, 4, 5]

        env2 = Environment()
        streams = env2.from_collection([1]).union(
            env2.from_collection([2]), env2.from_collection([3]))
        out = streams.collect()
        env2.execute()
        assert sorted(out.get()) == [1, 2, 3]

    def test_union_of_nothing_is_identity(self):
        env = Environment()
        data = env.read([1, 2, 3])
        assert data.union() is data
