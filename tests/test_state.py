"""Unit tests for keyed state descriptors, handles and the backend."""

import pytest

from repro.state import (
    AggregatingStateDescriptor,
    KeyedStateBackend,
    ListStateDescriptor,
    MapStateDescriptor,
    ReducingStateDescriptor,
    ValueStateDescriptor,
)
from repro.windowing.aggregates import AvgAggregate


@pytest.fixture
def backend():
    return KeyedStateBackend()


class TestValueState:
    def test_scoped_by_current_key(self, backend):
        state = backend.get_state(ValueStateDescriptor("v", default=0))
        backend.set_current_key("a")
        state.update(1)
        backend.set_current_key("b")
        assert state.value() == 0  # default for unseen key
        state.update(2)
        backend.set_current_key("a")
        assert state.value() == 1

    def test_clear(self, backend):
        state = backend.get_state(ValueStateDescriptor("v", default=-1))
        backend.set_current_key("a")
        state.update(5)
        state.clear()
        assert state.value() == -1

    def test_access_without_key_raises(self, backend):
        state = backend.get_state(ValueStateDescriptor("v"))
        with pytest.raises(RuntimeError):
            state.value()


class TestListState:
    def test_append_and_read(self, backend):
        state = backend.get_state(ListStateDescriptor("l"))
        backend.set_current_key("k")
        state.add(1)
        state.add(2)
        assert state.get() == [1, 2]

    def test_update_replaces(self, backend):
        state = backend.get_state(ListStateDescriptor("l"))
        backend.set_current_key("k")
        state.add(1)
        state.update([9])
        assert state.get() == [9]


class TestMapState:
    def test_put_get_remove(self, backend):
        state = backend.get_state(MapStateDescriptor("m"))
        backend.set_current_key("k")
        state.put("x", 1)
        assert state.get("x") == 1
        assert state.contains("x")
        state.remove("x")
        assert not state.contains("x")
        assert state.get("x", "default") == "default"

    def test_keys_and_items(self, backend):
        state = backend.get_state(MapStateDescriptor("m"))
        backend.set_current_key("k")
        state.put("a", 1)
        state.put("b", 2)
        assert sorted(state.keys()) == ["a", "b"]
        assert dict(state.items()) == {"a": 1, "b": 2}

    def test_is_empty(self, backend):
        state = backend.get_state(MapStateDescriptor("m"))
        backend.set_current_key("k")
        assert state.is_empty()
        state.put("a", 1)
        assert not state.is_empty()


class TestReducingState:
    def test_folds_values(self, backend):
        state = backend.get_state(
            ReducingStateDescriptor("r", lambda a, b: a + b))
        backend.set_current_key("k")
        state.add(3)
        state.add(4)
        assert state.get() == 7


class TestAggregatingState:
    def test_accumulates_through_aggregate_function(self, backend):
        state = backend.get_state(AggregatingStateDescriptor("a",
                                                             AvgAggregate()))
        backend.set_current_key("k")
        state.add(2)
        state.add(4)
        assert state.get() == pytest.approx(3.0)

    def test_get_on_empty_returns_none(self, backend):
        state = backend.get_state(AggregatingStateDescriptor("a",
                                                             AvgAggregate()))
        backend.set_current_key("k")
        assert state.get() is None


class TestBackend:
    def test_conflicting_kind_rejected(self, backend):
        backend.get_state(ValueStateDescriptor("s"))
        with pytest.raises(ValueError):
            backend.get_state(ListStateDescriptor("s"))

    def test_snapshot_is_deep(self, backend):
        state = backend.get_state(ListStateDescriptor("l"))
        backend.set_current_key("k")
        state.add(1)
        snapshot = backend.snapshot()
        state.add(2)
        assert snapshot["l"]["k"] == [1]

    def test_restore_roundtrip(self, backend):
        state = backend.get_state(ValueStateDescriptor("v"))
        backend.set_current_key("k")
        state.update(42)
        snapshot = backend.snapshot()
        fresh = KeyedStateBackend()
        fresh_state = fresh.get_state(ValueStateDescriptor("v"))
        fresh.restore(snapshot)
        fresh.set_current_key("k")
        assert fresh_state.value() == 42

    def test_num_entries(self, backend):
        state = backend.get_state(ValueStateDescriptor("v"))
        for key in ("a", "b", "c"):
            backend.set_current_key(key)
            state.update(0)
        assert backend.num_entries() == 3

    def test_empty_state_name_rejected(self):
        with pytest.raises(ValueError):
            ValueStateDescriptor("")
